package stress

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

// Register is the uniform view the stress driver takes of one figure
// implementation: a single machine-backed shared variable with per-process
// handles, initialized to 0. Method index p identifies the processor; each
// index may be driven by at most one goroutine at a time.
type Register interface {
	Name() string
	// MaxVal is the largest value the driver may store, chosen small enough
	// for every figure's data field.
	MaxVal() uint64
	Read(p int) uint64
}

// LLSC is the interface of the LL/VL/SC-shaped figures (4-7). The adapter
// tracks the current reservation token ("keep") per processor.
type LLSC interface {
	Register
	// LL loads-linked and retains the keep for p.
	LL(p int) uint64
	// VL validates p's outstanding reservation. ok is false when p has no
	// outstanding reservation to validate — nothing was invoked and the
	// driver must pick another operation. (Figure 7's bounded tags make a
	// stale keep a protocol violation, so the gate is uniform.)
	VL(p int) (res, ok bool)
	// SC store-conditionals against p's outstanding reservation, consuming
	// it. Calling SC without an outstanding reservation is a driver bug.
	SC(p int, v uint64) bool
	// Abort abandons p's outstanding reservation without an SC — via CL
	// where the figure has it (Figure 7), by dropping the keep otherwise.
	// Reports false if there was nothing to abort.
	Abort(p int) bool
}

// CASer is the interface of the Read/CAS-shaped Figure 3.
type CASer interface {
	Register
	CAS(p int, old, new uint64) bool
}

// Recoverer is implemented by adapters that can repair their state after
// machine.Restart replaced processor p's incarnation: refresh the stale
// *machine.Proc handle, drop any reservation the dead incarnation held,
// and run the figure's crash-recovery reclamation (Figure 6 copy
// completion, Figure 7 tag/slot reclamation). Call it after Restart and
// before the new incarnation's first operation.
type Recoverer interface {
	RecoverProc(p int) error
}

// Conserver is implemented by adapters whose figure owns bounded resources
// (Figure 6 buffers, Figure 7 tags and announce slots). CheckConservation
// verifies none leaked; call it only at quiescence.
type Conserver interface {
	CheckConservation() error
}

// valCap bounds driver-generated values: small enough for every figure's
// data field and for readable failure output.
const valCap = 255

// RegisterSpec names one figure implementation and knows how to build it
// on a fresh machine.
type RegisterSpec struct {
	Name string
	New  func(m *machine.Machine, met *obs.Metrics) (Register, error)
}

// DefaultRegisters returns the five figure implementations, all realized
// over the simulated machine so fault plans reach them:
//
//	fig3  CAS from RLL/RSC (CASVar)
//	fig4  LL/SC from CAS — the CAS being Figure 3's (baseline.Composed)
//	fig5  LL/SC from RLL/RSC with one tag (RVar)
//	fig6  W-word LL/SC, W=2, with helping (RLargeFamily)
//	fig7  bounded-tag LL/VL/CL/SC, k=2 (RBoundedFamily)
func DefaultRegisters() []RegisterSpec {
	return []RegisterSpec{
		{"fig3", newFig3},
		{"fig4", newFig4},
		{"fig5", newFig5},
		{"fig6", newFig6},
		{"fig7", newFig7},
	}
}

// procHandles resolves the machine's per-processor handles once.
func procHandles(m *machine.Machine) []*machine.Proc {
	ps := make([]*machine.Proc, m.NumProcs())
	for i := range ps {
		ps[i] = m.Proc(i)
	}
	return ps
}

// --- Figure 3: CAS from RLL/RSC ---

type fig3 struct {
	v  *core.CASVar
	m  *machine.Machine
	ps []*machine.Proc
}

func newFig3(m *machine.Machine, met *obs.Metrics) (Register, error) {
	v, err := core.NewCASVar(m, word.MustLayout(16), 0)
	if err != nil {
		return nil, err
	}
	v.SetMetrics(met)
	return &fig3{v: v, m: m, ps: procHandles(m)}, nil
}

func (r *fig3) Name() string                    { return "fig3" }
func (r *fig3) MaxVal() uint64                  { return valCap }
func (r *fig3) Read(p int) uint64               { return r.v.Read(r.ps[p]) }
func (r *fig3) CAS(p int, old, new uint64) bool { return r.v.CompareAndSwap(r.ps[p], old, new) }

// RecoverProc adopts processor p's fresh incarnation; Figure 3 keeps no
// per-process resources beyond the handle.
func (r *fig3) RecoverProc(p int) error {
	r.ps[p] = r.m.Proc(p)
	return nil
}

// --- Figure 4: LL/SC from CAS, machine-backed (Composed) ---

type fig4 struct {
	v     *baseline.Composed
	m     *machine.Machine
	ps    []*machine.Proc
	keeps []baseline.ComposedKeep
	has   []bool
}

func newFig4(m *machine.Machine, met *obs.Metrics) (Register, error) {
	v, err := baseline.NewComposed(m, 24, 24, 0)
	if err != nil {
		return nil, err
	}
	n := m.NumProcs()
	return &fig4{v: v, m: m, ps: procHandles(m), keeps: make([]baseline.ComposedKeep, n), has: make([]bool, n)}, nil
}

// RecoverProc adopts processor p's fresh incarnation and drops the dead
// incarnation's reservation; Figure 4's keep is private state, so nothing
// shared needs reclaiming.
func (r *fig4) RecoverProc(p int) error {
	r.ps[p] = r.m.Proc(p)
	r.has[p] = false
	return nil
}

func (r *fig4) Name() string      { return "fig4" }
func (r *fig4) MaxVal() uint64    { return valCap }
func (r *fig4) Read(p int) uint64 { return r.v.Read(r.ps[p]) }

func (r *fig4) LL(p int) uint64 {
	v, keep := r.v.LL(r.ps[p])
	r.keeps[p], r.has[p] = keep, true
	return v
}

func (r *fig4) VL(p int) (bool, bool) {
	if !r.has[p] {
		return false, false
	}
	return r.v.VL(r.ps[p], r.keeps[p]), true
}

func (r *fig4) SC(p int, v uint64) bool {
	if !r.has[p] {
		panic("stress: fig4 SC without outstanding LL")
	}
	r.has[p] = false
	return r.v.SC(r.ps[p], r.keeps[p], v)
}

func (r *fig4) Abort(p int) bool {
	ok := r.has[p]
	r.has[p] = false
	return ok
}

// --- Figure 5: LL/SC from RLL/RSC ---

type fig5 struct {
	v     *core.RVar
	m     *machine.Machine
	ps    []*machine.Proc
	keeps []core.Keep
	has   []bool
}

func newFig5(m *machine.Machine, met *obs.Metrics) (Register, error) {
	v, err := core.NewRVar(m, word.MustLayout(32), 0)
	if err != nil {
		return nil, err
	}
	v.SetMetrics(met)
	n := m.NumProcs()
	return &fig5{v: v, m: m, ps: procHandles(m), keeps: make([]core.Keep, n), has: make([]bool, n)}, nil
}

// RecoverProc adopts processor p's fresh incarnation; the machine cleared
// the dead incarnation's reservation, so only the private keep is dropped.
func (r *fig5) RecoverProc(p int) error {
	r.ps[p] = r.m.Proc(p)
	r.has[p] = false
	return nil
}

func (r *fig5) Name() string      { return "fig5" }
func (r *fig5) MaxVal() uint64    { return valCap }
func (r *fig5) Read(p int) uint64 { return r.v.Read(r.ps[p]) }

func (r *fig5) LL(p int) uint64 {
	v, keep := r.v.LL(r.ps[p])
	r.keeps[p], r.has[p] = keep, true
	return v
}

func (r *fig5) VL(p int) (bool, bool) {
	if !r.has[p] {
		return false, false
	}
	return r.v.VL(r.ps[p], r.keeps[p]), true
}

func (r *fig5) SC(p int, v uint64) bool {
	if !r.has[p] {
		panic("stress: fig5 SC without outstanding LL")
	}
	r.has[p] = false
	return r.v.SC(r.ps[p], r.keeps[p], v)
}

func (r *fig5) Abort(p int) bool {
	ok := r.has[p]
	r.has[p] = false
	return ok
}

// --- Figure 6: W-word LL/SC with helping, W=2 ---

// fig6 stores each logical value v as the W-vector [v, v]. Any torn read
// would surface as unequal halves, which the adapter treats as fatal — the
// whole point of Figure 6 is that snapshots are consistent.
type fig6 struct {
	v     *core.RLargeVar
	f     *core.RLargeFamily
	m     *machine.Machine
	ps    []*machine.Proc
	keeps []core.LKeep
	has   []bool
	bufs  [][]uint64 // per-proc WLL/Read destination
	scs   [][]uint64 // per-proc SC source
}

func newFig6(m *machine.Machine, met *obs.Metrics) (Register, error) {
	f, err := core.NewRLargeFamily(m, 2, 0)
	if err != nil {
		return nil, err
	}
	f.SetMetrics(met)
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		return nil, err
	}
	n := m.NumProcs()
	r := &fig6{v: v, f: f, m: m, ps: procHandles(m), keeps: make([]core.LKeep, n), has: make([]bool, n),
		bufs: make([][]uint64, n), scs: make([][]uint64, n)}
	for i := 0; i < n; i++ {
		r.bufs[i] = make([]uint64, 2)
		r.scs[i] = make([]uint64, 2)
	}
	return r, nil
}

func (r *fig6) Name() string   { return "fig6" }
func (r *fig6) MaxVal() uint64 { return valCap }

func (r *fig6) checkTorn(p int, buf []uint64) uint64 {
	if buf[0] != buf[1] {
		panic(fmt.Sprintf("stress: fig6 torn read on proc %d: segments [%d %d]", p, buf[0], buf[1]))
	}
	return buf[0]
}

func (r *fig6) Read(p int) uint64 {
	r.v.Read(r.ps[p], r.bufs[p])
	return r.checkTorn(p, r.bufs[p])
}

// LL retries the weak WLL until it returns a consistent value; failed
// attempts are internal (they make no reservation the driver could use)
// and stay unrecorded.
func (r *fig6) LL(p int) uint64 {
	for {
		keep, res := r.v.WLL(r.ps[p], r.bufs[p])
		if res != core.Succ {
			continue
		}
		r.keeps[p], r.has[p] = keep, true
		return r.checkTorn(p, r.bufs[p])
	}
}

func (r *fig6) VL(p int) (bool, bool) {
	if !r.has[p] {
		return false, false
	}
	return r.v.VL(r.ps[p], r.keeps[p]), true
}

func (r *fig6) SC(p int, v uint64) bool {
	if !r.has[p] {
		panic("stress: fig6 SC without outstanding WLL")
	}
	r.has[p] = false
	r.scs[p][0], r.scs[p][1] = v, v
	return r.v.SC(r.ps[p], r.keeps[p], r.scs[p])
}

func (r *fig6) Abort(p int) bool {
	ok := r.has[p]
	r.has[p] = false
	return ok
}

// RecoverProc adopts processor p's fresh incarnation, drops the dead
// incarnation's reservation, and completes any copy the dead incarnation
// orphaned mid-SC (the fresh handle itself serves as the helper).
func (r *fig6) RecoverProc(p int) error {
	r.ps[p] = r.m.Proc(p)
	r.has[p] = false
	_, err := r.f.Recover(r.ps[p], p)
	return err
}

// CheckConservation verifies every segment of every variable carries its
// header's tag — no buffer is stuck one generation behind.
func (r *fig6) CheckConservation() error {
	for _, p := range r.ps {
		if !p.Crashed() {
			return r.f.CheckConservation(p)
		}
	}
	return fmt.Errorf("stress: fig6 conservation check needs one live processor")
}

// --- Figure 7: bounded tags, k=2 ---

type fig7 struct {
	v     *core.RBoundedVar
	f     *core.RBoundedFamily
	ps    []*core.RBoundedProc
	keeps []core.BKeep
	has   []bool
}

func newFig7(m *machine.Machine, met *obs.Metrics) (Register, error) {
	f, err := core.NewRBoundedFamily(m, 2)
	if err != nil {
		return nil, err
	}
	f.SetMetrics(met)
	v, err := f.NewVar(0)
	if err != nil {
		return nil, err
	}
	n := m.NumProcs()
	r := &fig7{v: v, f: f, keeps: make([]core.BKeep, n), has: make([]bool, n)}
	r.ps = make([]*core.RBoundedProc, n)
	for i := range r.ps {
		h, err := f.Proc(i)
		if err != nil {
			return nil, err
		}
		r.ps[i] = h
	}
	return r, nil
}

func (r *fig7) Name() string      { return "fig7" }
func (r *fig7) MaxVal() uint64    { return valCap }
func (r *fig7) Read(p int) uint64 { return r.v.Read(r.ps[p]) }

// LL enforces the Figure 7 discipline of at most one outstanding sequence
// per driver: an abandoned reservation is CLed (returning its tag) before
// the new LL draws one.
func (r *fig7) LL(p int) uint64 {
	if r.has[p] {
		r.v.CL(r.ps[p], r.keeps[p])
		r.has[p] = false
	}
	v, keep, err := r.v.LL(r.ps[p])
	if err != nil {
		panic(fmt.Sprintf("stress: fig7 LL on proc %d: %v", p, err))
	}
	r.keeps[p], r.has[p] = keep, true
	return v
}

func (r *fig7) VL(p int) (bool, bool) {
	if !r.has[p] {
		return false, false
	}
	return r.v.VL(r.ps[p], r.keeps[p]), true
}

func (r *fig7) SC(p int, v uint64) bool {
	if !r.has[p] {
		panic("stress: fig7 SC without outstanding LL")
	}
	r.has[p] = false
	return r.v.SC(r.ps[p], r.keeps[p], v)
}

// Abort is the CL-then-never-SC path: the tag goes back to p's queue and
// the reservation is dead.
func (r *fig7) Abort(p int) bool {
	if !r.has[p] {
		return false
	}
	r.v.CL(r.ps[p], r.keeps[p])
	r.has[p] = false
	return true
}

// RecoverProc reclaims the announce slots and tags the dead incarnation of
// processor p held (the family refreshes its own machine handle) and drops
// the adapter's stale keep. Call after machine.Restart.
func (r *fig7) RecoverProc(p int) error {
	r.has[p] = false
	_, err := r.f.Recover(p)
	return err
}

// CheckConservation verifies the bounded tag space: every per-process tag
// queue is a permutation and every announce slot is free.
func (r *fig7) CheckConservation() error { return r.f.CheckConservation() }

var (
	_ CASer     = (*fig3)(nil)
	_ LLSC      = (*fig4)(nil)
	_ LLSC      = (*fig5)(nil)
	_ LLSC      = (*fig6)(nil)
	_ LLSC      = (*fig7)(nil)
	_ Recoverer = (*fig3)(nil)
	_ Recoverer = (*fig4)(nil)
	_ Recoverer = (*fig5)(nil)
	_ Recoverer = (*fig6)(nil)
	_ Recoverer = (*fig7)(nil)
	_ Conserver = (*fig6)(nil)
	_ Conserver = (*fig7)(nil)
)
