package stress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/linearizability"
)

// testConfig is the shared cell shape: small enough that every round fits
// one checker window, big enough to produce real contention. CI can dial
// rounds down (or a soak run up) via LLSC_STRESS_ROUNDS.
func testConfig(t *testing.T) Config {
	rounds := 10
	if testing.Short() {
		rounds = 3
	}
	if s := os.Getenv("LLSC_STRESS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad LLSC_STRESS_ROUNDS %q: %v", s, err)
		}
		rounds = n
	}
	return Config{Procs: 3, Rounds: rounds, OpsPerProc: 8, Seed: 42}
}

// TestStressMatrix is the acceptance gate: all five figure implementations
// under all five fault plans, zero linearizability violations, and the
// adversarial plans demonstrably active.
func TestStressMatrix(t *testing.T) {
	rep, err := RunMatrix(testConfig(t), DefaultRegisters(), DefaultPlans())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 25 {
		t.Fatalf("got %d cells, want 25", len(rep.Cells))
	}
	for _, v := range rep.Violations() {
		t.Errorf("cell %s/%s: %s", v.Register, v.Plan, v.Violation)
	}
	for _, c := range rep.Cells {
		injected := c.Counters["fault_inj_spurious"] + c.Counters["fault_inj_interference"] + c.Counters["fault_inj_stall"]
		switch c.Plan {
		case "none":
			if injected != 0 {
				t.Errorf("cell %s/none: %d faults injected by the control plan", c.Register, injected)
			}
		case "burst":
			if c.Counters["fault_inj_spurious"] == 0 {
				t.Errorf("cell %s/burst: no spurious failures injected", c.Register)
			}
		case "interference", "tagpressure":
			if c.Counters["fault_inj_interference"] == 0 {
				t.Errorf("cell %s/%s: no interference injected", c.Register, c.Plan)
			}
		case "crash":
			if !c.Crashed {
				t.Errorf("cell %s/crash: victim never wedged", c.Register)
			}
			if c.Counters["fault_inj_stall"] == 0 {
				t.Errorf("cell %s/crash: no stall recorded", c.Register)
			}
		}
	}
}

// TestCrashProgressTable asserts the paper's core progress claim for each
// of Figures 3-7: with one processor crashed mid-critical-sequence, every
// survivor still completes its whole workload.
func TestCrashProgressTable(t *testing.T) {
	cfg := testConfig(t)
	crash := DefaultPlans()[3]
	if crash.Name != "crash" {
		t.Fatal("plan order changed; update the test")
	}
	target := (linearizability.MaxOps - 1) / cfg.Procs
	for _, spec := range DefaultRegisters() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCell(spec, crash, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Crashed {
				t.Fatal("victim never wedged")
			}
			if !res.Ok {
				t.Fatalf("crash history not linearizable: %s", res.Violation)
			}
			victim := cfg.Procs - 1
			for p := 0; p < cfg.Procs; p++ {
				if p == victim {
					if res.CompletedOps[p] >= target {
						t.Errorf("victim completed its full workload (%d ops) despite the crash", res.CompletedOps[p])
					}
					continue
				}
				if res.CompletedOps[p] < target {
					t.Errorf("survivor %d completed %d ops, want at least %d", p, res.CompletedOps[p], target)
				}
			}
		})
	}
}

// TestLockBaselineStallsWhereFiguresProgress is the contrast case: the
// footnote-1 lock-based LL/SC wedges every process when the lock holder
// stalls — exactly what TestCrashProgressTable shows Figures 3-7 do not.
func TestLockBaselineStallsWhereFiguresProgress(t *testing.T) {
	const procs = 3
	v, err := baseline.NewMutexLLSC(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	held := make(chan struct{})
	release := make(chan struct{})
	var holder sync.WaitGroup
	holder.Add(1)
	go func() {
		defer holder.Done()
		v.LockForDemo(held, release)
	}()
	<-held

	// Survivors each try one LL; with the lock held, none may complete.
	done := make(chan int, procs-1)
	var wg sync.WaitGroup
	for p := 0; p < procs-1; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v.LL(p)
			done <- p
		}(p)
	}
	deadline := time.After(300 * time.Millisecond)
	completed := 0
poll:
	for {
		select {
		case <-done:
			completed++
		case <-deadline:
			break poll
		}
	}
	if completed != 0 {
		t.Fatalf("%d processes completed an op while the lock holder was stalled; a lock-based LL/SC must wedge them all", completed)
	}

	close(release)
	holder.Wait()
	wg.Wait()
	// Sanity: after release the survivors' LLs completed.
	for i := 0; i < procs-1; i++ {
		<-done
	}
}

func TestRunCellControlHasCleanCounters(t *testing.T) {
	cfg := testConfig(t)
	res, err := RunCell(DefaultRegisters()[2], DefaultPlans()[0], cfg) // fig5 / none
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("control cell not linearizable: %s", res.Violation)
	}
	// Round barriers guarantee quiescent cuts, so a multi-round run must
	// split into several windows (the greedy merger may pack segments
	// across round boundaries, so Windows needn't equal Rounds).
	if cfg.Rounds > 2 && res.Windows < 2 {
		t.Errorf("Windows = %d for a %d-round run, want the history windowed", res.Windows, cfg.Rounds)
	}
	if res.Counters["rsc"] == 0 || res.Counters["mach_cas"]+res.Counters["mach_load"] == 0 {
		t.Errorf("machine counters empty: %v", res.Counters)
	}
	if res.Pending != 0 {
		t.Errorf("Pending = %d after quiescent run", res.Pending)
	}
}

func TestReportWriteFile(t *testing.T) {
	rep := &Report{Schema: ReportSchema, Seed: 7, Procs: 3, Rounds: 1, OpsPerProc: 4,
		Cells: []CellResult{{Register: "fig5", Plan: "none", Ok: true, Ops: 12,
			CompletedOps: []int{4, 4, 4}, Counters: map[string]uint64{"rsc": 9}}}}
	path := filepath.Join(t.TempDir(), "stress.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Cells) != 1 || back.Cells[0].Register != "fig5" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"one proc":         {Procs: 1, Rounds: 1, OpsPerProc: 1},
		"zero rounds":      {Procs: 2, Rounds: 0, OpsPerProc: 1},
		"window too large": {Procs: 8, Rounds: 1, OpsPerProc: 8},
	} {
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if err := (Config{Procs: 3, Rounds: 1, OpsPerProc: 8}).validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
