package stress

// The chaos soak harness: the stress matrix's big brother. Where RunCell
// subjects one figure to one fault plan for a bounded burst, RunSoakCell
// runs many quiescent rounds under a COMPOSED adversary — a budgeted
// kill-restart plan (fault.CrashRestart) layered over spurious-failure
// bursts and tag pressure — and exercises the full crash-recovery
// lifecycle on every kill:
//
//	CrashPanic on the victim's goroutine
//	  -> lease handoff in machine.Registry (supervisor-mediated)
//	  -> machine.Restart installs a fresh incarnation
//	  -> the register's RecoverProc reclaims the dead incarnation's
//	     resources (Figure 6 orphaned copies, Figure 7 tags and slots)
//	  -> the relaunched lane finishes the round's remaining operations
//
// After every round — a quiescent cut — the harness re-checks
// linearizability (with the dead incarnations' in-flight ops as pending
// variants) and the figure's resource-conservation invariant. Throughout,
// a recovery.Watchdog watches the machine's global step clock against
// completed operations: the paper's claim is that the figures stay Live
// under any crash pattern, and the lock-based baseline (RunWedgeDemo)
// provably does not.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/recovery"
	mtrace "repro/internal/trace"
)

// SoakSchema identifies the soak report JSON format. Bump only on
// incompatible changes; additive fields keep the version.
const SoakSchema = "llsc-soak/v1"

// SoakConfig parametrizes one soak run (shared by every cell).
type SoakConfig struct {
	// Procs, Rounds, OpsPerProc and Seed mean what they mean in Config.
	Procs      int
	Rounds     int
	OpsPerProc int
	Seed       int64
	// KillEvery is the machine-operation index, within each incarnation of
	// the victim (the highest-numbered processor), at which the kill plan
	// crashes it. KillBudget bounds kills per cell.
	KillEvery  int
	KillBudget int
	// WatchdogK is the wedge threshold: machine steps without one completed
	// operation before the watchdog declares the system wedged.
	WatchdogK uint64
	// LeaseTTL is the registry lease time-to-live in machine steps.
	LeaseTTL uint64
	// Timeout bounds one cell's wall-clock run. Defaults to 60s.
	Timeout time.Duration
	// FlightDir, when set, arms a flight recorder per cell: span tracing
	// is enabled, and the first linearizability violation, conservation
	// leak, or wedge verdict dumps an llsc-flight/v1 snapshot (plus a
	// Chrome trace export) into this directory. Empty disables tracing
	// entirely — the soak hot paths then cost a nil check.
	FlightDir string
}

func (cfg SoakConfig) withDefaults() SoakConfig {
	if cfg.KillEvery == 0 {
		cfg.KillEvery = 40
	}
	if cfg.KillBudget == 0 {
		cfg.KillBudget = 3
	}
	if cfg.WatchdogK == 0 {
		cfg.WatchdogK = 50_000
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 200_000
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	return cfg
}

func (cfg SoakConfig) validate() error {
	if cfg.Procs < 2 {
		return fmt.Errorf("soak: Procs must be at least 2, got %d", cfg.Procs)
	}
	if cfg.Rounds < 1 || cfg.OpsPerProc < 1 {
		return fmt.Errorf("soak: Rounds and OpsPerProc must be positive, got %d and %d", cfg.Rounds, cfg.OpsPerProc)
	}
	if cfg.KillEvery < 1 {
		return fmt.Errorf("soak: KillEvery must be at least 1, got %d", cfg.KillEvery)
	}
	if cfg.KillBudget < 0 {
		return fmt.Errorf("soak: KillBudget must be non-negative, got %d", cfg.KillBudget)
	}
	// A round's completed ops plus every possible orphan must fit one exact
	// checker window.
	if w := cfg.Procs*(cfg.OpsPerProc+2) + cfg.KillBudget; w > linearizability.MaxOps {
		return fmt.Errorf("soak: a round may record %d ops, checker windows cap at %d (reduce Procs or OpsPerProc)",
			w, linearizability.MaxOps)
	}
	return nil
}

// SoakCellResult is the outcome of one register's full soak.
type SoakCellResult struct {
	Register string `json:"register"`
	Plan     string `json:"plan"`
	Ok       bool   `json:"ok"`
	// Violation describes the first failed check: a non-linearizable round
	// or a conservation leak.
	Violation string `json:"violation,omitempty"`
	// Rounds is how many quiescent rounds completed; Ops the total
	// completed operations recorded across them.
	Rounds int `json:"rounds"`
	Ops    int `json:"ops"`
	// Kills and Restarts count injected crashes and successful restarts
	// (equal unless the budget outlived the run).
	Kills    uint64 `json:"kills"`
	Restarts int    `json:"restarts"`
	// PostRestartCommits counts successful SC/CAS operations recorded by
	// restarted incarnations — the evidence that recovery produces a
	// processor that can still commit.
	PostRestartCommits int `json:"post_restart_sc_commits"`
	// WatchdogWedged is the number of wedge verdicts rendered; the figures
	// must keep it at zero.
	WatchdogWedged uint64 `json:"watchdog_wedged"`
	// Counters is the cell's full observability snapshot (recovery_*,
	// lease_*, watchdog_*, fault_inj_* tell the recovery story).
	Counters map[string]uint64 `json:"counters"`
	// FlightDumps lists the flight-recorder dump paths this cell wrote
	// (empty unless SoakConfig.FlightDir was set and a check tripped).
	// Additive llsc-soak/v1 field.
	FlightDumps []string `json:"flight_dumps,omitempty"`
}

// WedgeResult is the outcome of the lock-based contrast demo: the same
// watchdog that stays silent across the figures must fire here.
type WedgeResult struct {
	Register string `json:"register"`
	// Wedged reports the watchdog fired after the lock holder crashed.
	Wedged bool `json:"wedged"`
	// Completed is how many lock-protected operations finished before the
	// crash wedged the system; Steps the machine steps executed in total —
	// survivors burning steps with nothing to show for them.
	Completed uint64 `json:"completed"`
	Steps     uint64 `json:"steps"`
	Checks    uint64 `json:"checks"`
	K         uint64 `json:"k"`
	// FlightDumps lists the dump(s) the demo's flight recorder wrote on
	// its first Wedged verdict (set only with SoakConfig.FlightDir).
	// Additive llsc-soak/v1 field.
	FlightDumps []string `json:"flight_dumps,omitempty"`
}

// SoakReport is the JSON-serializable outcome of a full soak, the artifact
// CI uploads from the soak-smoke job.
type SoakReport struct {
	Schema     string           `json:"schema"`
	Seed       int64            `json:"seed"`
	Procs      int              `json:"procs"`
	Rounds     int              `json:"rounds"`
	OpsPerProc int              `json:"ops_per_proc"`
	KillEvery  int              `json:"kill_every"`
	KillBudget int              `json:"kill_budget"`
	WatchdogK  uint64           `json:"watchdog_k"`
	LeaseTTL   uint64           `json:"lease_ttl"`
	Cells      []SoakCellResult `json:"cells"`
	Baseline   WedgeResult      `json:"baseline"`
}

// Violations returns the cells that failed any soak check, including a
// watchdog that wedged on a non-blocking figure.
func (r *SoakReport) Violations() []SoakCellResult {
	var out []SoakCellResult
	for _, c := range r.Cells {
		if !c.Ok {
			out = append(out, c)
		}
	}
	return out
}

// WriteFile writes the report as indented JSON, atomically.
func (r *SoakReport) WriteFile(path string) error { return writeJSONAtomic(path, r) }

// laneExit is one driver goroutine's terminal report: either it finished
// its target or its incarnation died to a CrashPanic after done ops.
type laneExit struct {
	p       int
	done    int
	crashed bool
}

// RunSoakCell soaks one register under the composed chaos plan.
func RunSoakCell(spec RegisterSpec, cfg SoakConfig) (SoakCellResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return SoakCellResult{}, err
	}
	victim := cfg.Procs - 1
	kill := fault.NewCrashRestart(victim, cfg.KillEvery, cfg.KillBudget)
	plan := fault.Compose(kill,
		fault.NewBurst(0, 0, 50),
		fault.NewTagPressure(3, 200))
	met := obs.NewWithStripes(cfg.Procs)
	plan.SetMetrics(met)
	observer := met.MachineObserver()
	var tr *trace.Tracer
	var fl *trace.Flight
	if cfg.FlightDir != "" {
		tr = trace.MustNew(trace.Config{Procs: cfg.Procs})
		tr.SetMetrics(met)
		tail := mtrace.MustNewRecorder(4096)
		observer = obs.TeeObservers(observer, tr.MachineObserver(), tail.Observe)
		var err error
		fl, err = trace.NewFlight(trace.FlightConfig{
			Dir: cfg.FlightDir, Label: spec.Name, Tracer: tr, Machine: tail, Metrics: met,
		})
		if err != nil {
			return SoakCellResult{}, err
		}
	}
	m, err := machine.New(machine.Config{Procs: cfg.Procs, Observer: observer, FaultPlan: plan})
	if err != nil {
		return SoakCellResult{}, err
	}
	reg, err := spec.New(m, met)
	if err != nil {
		return SoakCellResult{}, err
	}
	res := SoakCellResult{Register: spec.Name, Plan: plan.Name()}

	registry, err := machine.NewRegistry(m, cfg.LeaseTTL)
	if err != nil {
		return SoakCellResult{}, err
	}
	rec := &recorder{lanes: make([]lane, cfg.Procs)}
	dog, err := recovery.NewWatchdog(m, rec.completed.Load, cfg.WatchdogK)
	if err != nil {
		return SoakCellResult{}, err
	}
	sup, err := recovery.NewSupervisor(registry, dog)
	if err != nil {
		return SoakCellResult{}, err
	}
	sup.SetMetrics(met)
	sup.SetTracer(tr)
	for p := 0; p < cfg.Procs; p++ {
		if err := sup.Join(p); err != nil {
			return SoakCellResult{}, err
		}
	}

	deadline := time.After(cfg.Timeout)
	// The round checks thread the register's possible quiescent states from
	// each round into the next (orphaned mutators can leave more than one).
	states := []linearizability.State{{}}
	for round := 0; round < cfg.Rounds; round++ {
		if err := runSoakRound(reg, rec, m, sup, fl, cfg, round, deadline, &states, &res); err != nil {
			return SoakCellResult{}, fmt.Errorf("soak: %s round %d: %w", spec.Name, round, err)
		}
		res.Rounds++
		if !res.Ok && res.Violation != "" {
			break // first failure is enough; the report records it
		}
	}
	res.Kills = kill.Kills()
	res.Counters = met.Snapshot().Map()
	res.WatchdogWedged = res.Counters["watchdog_wedged"]
	if res.Ok && res.WatchdogWedged > 0 {
		res.Ok = false
		res.Violation = fmt.Sprintf("watchdog wedged %d time(s) on a non-blocking figure", res.WatchdogWedged)
	}
	if !res.Ok && res.WatchdogWedged > 0 {
		if _, _, err := fl.Trigger("wedged"); err != nil {
			return SoakCellResult{}, err
		}
	}
	res.FlightDumps = fl.Dumps()
	return res, nil
}

// runSoakRound drives one quiescent round: all lanes to their op target,
// restarting crashed incarnations as they die, then checks the round's
// history and the register's conservation invariant.
func runSoakRound(reg Register, rec *recorder, m *machine.Machine, sup *recovery.Supervisor, fl *trace.Flight,
	cfg SoakConfig, round int, deadline <-chan time.Time, states *[]linearizability.State, res *SoakCellResult) error {
	exits := make(chan laneExit, cfg.Procs)
	var wg sync.WaitGroup
	incarnation := make([]int, cfg.Procs)
	launch := func(p, already int) {
		wg.Add(1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*1009 + int64(p)*31 + int64(incarnation[p])*7919))
		go func() {
			done := already
			crashed := false
			defer func() {
				wg.Done()
				if r := recover(); r != nil {
					if _, ok := r.(machine.CrashPanic); !ok {
						panic(r)
					}
					crashed = true
				}
				exits <- laneExit{p: p, done: done, crashed: crashed}
			}()
			for done < cfg.OpsPerProc {
				if err := sup.Heartbeat(p); err != nil {
					// Fenced: this incarnation's lease lapsed and a refused
					// heartbeat is the kill signal. Crash self; the next
					// shared-memory op raises the CrashPanic.
					m.Proc(p).Crash()
				}
				done += stepOnce(reg, rec, p, rng)
			}
		}()
	}
	for p := 0; p < cfg.Procs; p++ {
		launch(p, 0)
	}

	var orphans []history.Op
	restartClock := make(map[int]int64) // proc -> clock of its first restart this round
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	live := cfg.Procs
	for live > 0 {
		select {
		case e := <-exits:
			if !e.crashed {
				live--
				continue
			}
			// The full recovery path: harvest the dead incarnation's
			// in-flight op, hand the lease over, install a fresh
			// incarnation, reclaim its resources, relaunch the lane.
			if op := rec.takePending(e.p); op != nil {
				orphans = append(orphans, *op)
			}
			if sup.Reg.State(e.p) == machine.LeaseLive {
				if err := sup.Leave(e.p); err != nil {
					return err
				}
			}
			if _, err := m.Restart(e.p); err != nil {
				return err
			}
			if r, ok := reg.(Recoverer); ok {
				if err := r.RecoverProc(e.p); err != nil {
					return err
				}
			}
			sup.NoteRestart(e.p)
			if err := sup.Join(e.p); err != nil {
				return err
			}
			res.Restarts++
			if _, seen := restartClock[e.p]; !seen {
				restartClock[e.p] = rec.clock.Load()
			}
			incarnation[e.p]++
			launch(e.p, e.done)
		case <-tick.C:
			// Watchdog and lease sweep. Expired leases of still-running
			// processors are left to self-fence at their next heartbeat;
			// crashed ones surface through the exits channel.
			sup.Poll()
		case <-deadline:
			return fmt.Errorf("timed out with %d lane(s) outstanding", live)
		}
	}
	wg.Wait()
	// At least one supervision sample per round, however fast the round ran
	// (the in-round ticker only fires on slow rounds): progress flowed, so a
	// healthy figure reads Live here and Wedged is a real regression.
	sup.Poll()

	ops, pending, _ := rec.harvest()
	if len(pending) != 0 {
		return fmt.Errorf("%d pending ops after quiescence", len(pending))
	}
	res.Ops += len(ops)
	for p, clk := range restartClock {
		for _, op := range ops {
			if op.Proc == p && op.Call > clk && op.RetBool &&
				(op.Kind == history.KindSC || op.Kind == history.KindCAS) {
				res.PostRestartCommits++
			}
		}
	}
	ok, finals, err := checkSoakRound(ops, orphans, *states)
	if err != nil {
		return err
	}
	res.Ok = ok
	if !ok {
		res.Violation = fmt.Sprintf("round %d: history not linearizable from any carried state under any pending-op variant", round)
		if _, _, err := fl.Trigger("linearizability"); err != nil {
			return err
		}
		return nil
	}
	*states = finals
	if c, ok := reg.(Conserver); ok {
		if err := c.CheckConservation(); err != nil {
			res.Ok = false
			res.Violation = fmt.Sprintf("round %d: conservation: %v", round, err)
			if _, _, err := fl.Trigger("conservation"); err != nil {
				return err
			}
			return nil
		}
	}
	rec.reset()
	return nil
}

// checkSoakRound checks one round's history from every carried quiescent
// state, with each dead incarnation's in-flight mutator optionally having
// taken effect (completed at +inf), and returns the union of possible
// quiescent states the accepted linearizations end in — the next round's
// starting states.
func checkSoakRound(ops, orphans []history.Op, initials []linearizability.State) (bool, []linearizability.State, error) {
	var cands []history.Op
	for _, op := range orphans {
		switch op.Kind {
		case history.KindSC, history.KindCAS, history.KindWrite:
			op.RetBool = true
			op.Return = math.MaxInt64
			cands = append(cands, op)
		}
	}
	if len(cands) > 10 {
		return false, nil, fmt.Errorf("%d pending mutators; subset check capped at 10", len(cands))
	}
	seen := make(map[linearizability.State]struct{})
	var finals []linearizability.State
	for mask := 0; mask < 1<<len(cands); mask++ {
		withOps := ops
		if mask != 0 {
			withOps = append([]history.Op(nil), ops...)
			for i, op := range cands {
				if mask&(1<<i) != 0 {
					withOps = append(withOps, op)
				}
			}
		}
		fs, err := linearizability.FinalStates(withOps, initials)
		if err != nil {
			return false, nil, err
		}
		for _, s := range fs {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				finals = append(finals, s)
			}
		}
	}
	return len(finals) > 0, finals, nil
}

// RunWedgeDemo is the contrast baseline the watchdog exists for: a
// test-and-set spin lock over a machine word protects a plain value word —
// footnote 1's lock-based "implementation". The lock holder crashes inside
// its critical section; the survivors spin on RLL/RSC forever, burning
// machine steps without one completed operation, and the watchdog must
// declare the system Wedged. The same watchdog configuration stays silent
// across all five figures in RunSoak.
func RunWedgeDemo(cfg SoakConfig) (WedgeResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Procs < 2 {
		return WedgeResult{}, fmt.Errorf("soak: wedge demo needs at least 2 procs, got %d", cfg.Procs)
	}
	met := obs.NewWithStripes(cfg.Procs)
	var tr *trace.Tracer
	var fl *trace.Flight
	var observer func(machine.Event)
	if cfg.FlightDir != "" {
		tr = trace.MustNew(trace.Config{Procs: cfg.Procs})
		tr.SetMetrics(met)
		tail := mtrace.MustNewRecorder(4096)
		observer = obs.TeeObservers(tr.MachineObserver(), tail.Observe)
		var err error
		fl, err = trace.NewFlight(trace.FlightConfig{
			Dir: cfg.FlightDir, Label: "lockbase", Tracer: tr, Machine: tail, Metrics: met,
		})
		if err != nil {
			return WedgeResult{}, err
		}
	}
	m, err := machine.New(machine.Config{Procs: cfg.Procs, Observer: observer})
	if err != nil {
		return WedgeResult{}, err
	}
	lock := m.NewWord(0) // 0 free, p+1 held by p
	val := m.NewWord(0)
	var completed atomic.Uint64
	dog, err := recovery.NewWatchdog(m, completed.Load, cfg.WatchdogK)
	if err != nil {
		return WedgeResult{}, err
	}
	dog.SetMetrics(met)
	dog.SetTracer(tr)

	var stop atomic.Bool
	acquire := func(p *machine.Proc) bool {
		for !stop.Load() {
			if p.RLL(lock) == 0 && p.RSC(lock, uint64(p.ID())+1) {
				return true
			}
		}
		return false
	}
	var wg sync.WaitGroup
	// The victim takes the lock and crashes before releasing it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(machine.CrashPanic); !ok {
					panic(r)
				}
			}
		}()
		p := m.Proc(0)
		if !acquire(p) {
			return
		}
		p.Crash()
		p.Store(val, 1) // raises CrashPanic: the lock is never released
	}()
	// The survivors try to keep completing lock-protected increments.
	for q := 1; q < cfg.Procs; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			p := m.Proc(q)
			for !stop.Load() {
				if !acquire(p) {
					return
				}
				p.Store(val, p.Load(val)+1)
				p.Store(lock, 0)
				completed.Add(1)
			}
		}(q)
	}

	result := WedgeResult{Register: "lockbase", K: cfg.WatchdogK}
	deadline := time.After(cfg.Timeout)
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
poll:
	for {
		select {
		case <-tick.C:
			result.Checks++
			if dog.Check() == recovery.Wedged {
				result.Wedged = true
				if _, _, err := fl.Trigger("wedged"); err != nil {
					return WedgeResult{}, err
				}
				break poll
			}
		case <-deadline:
			break poll
		}
	}
	stop.Store(true)
	wg.Wait()
	result.Completed = completed.Load()
	result.Steps = m.Steps()
	result.FlightDumps = fl.Dumps()
	return result, nil
}

// RunSoak soaks every register and runs the lock-based contrast demo,
// aggregating a Report.
func RunSoak(cfg SoakConfig, regs []RegisterSpec) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	rep := &SoakReport{Schema: SoakSchema, Seed: cfg.Seed,
		Procs: cfg.Procs, Rounds: cfg.Rounds, OpsPerProc: cfg.OpsPerProc,
		KillEvery: cfg.KillEvery, KillBudget: cfg.KillBudget,
		WatchdogK: cfg.WatchdogK, LeaseTTL: cfg.LeaseTTL}
	for _, reg := range regs {
		cell, err := RunSoakCell(reg, cfg)
		if err != nil {
			return nil, fmt.Errorf("soak: cell %s: %w", reg.Name, err)
		}
		rep.Cells = append(rep.Cells, cell)
	}
	base, err := RunWedgeDemo(cfg)
	if err != nil {
		return nil, err
	}
	rep.Baseline = base
	return rep, nil
}
