package stress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

func soakTestConfig() SoakConfig {
	return SoakConfig{
		Procs: 3, Rounds: 4, OpsPerProc: 14, Seed: 7,
		KillEvery: 25, KillBudget: 2, Timeout: 30 * time.Second,
	}
}

// TestSoakCellFig7 exercises the richest recovery path: bounded tags and
// announce slots must be reclaimed from every dead incarnation, and the
// restarted incarnations must keep committing.
func TestSoakCellFig7(t *testing.T) {
	res, err := RunSoakCell(RegisterSpec{Name: "fig7", New: newFig7}, soakTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("soak failed: %s", res.Violation)
	}
	if res.Rounds != 4 {
		t.Fatalf("completed %d rounds, want 4", res.Rounds)
	}
	if res.Kills == 0 {
		t.Fatal("the kill plan never fired")
	}
	if res.Restarts < int(res.Kills) {
		t.Fatalf("Restarts = %d < Kills = %d: a dead incarnation was never restarted", res.Restarts, res.Kills)
	}
	if res.PostRestartCommits == 0 {
		t.Fatal("no SC committed by a restarted incarnation")
	}
	if res.WatchdogWedged != 0 {
		t.Fatalf("watchdog wedged %d time(s) on a non-blocking figure", res.WatchdogWedged)
	}
	// Slot/tag reclamation counters are schedule-dependent (the kill must
	// land inside an LL..SC window); the deterministic reclaim tests live in
	// internal/core. Here we pin the counters every soak must move.
	for _, ctr := range []string{"recovery_restarts", "lease_joins", "watchdog_checks", "fault_inj_crash"} {
		if res.Counters[ctr] == 0 {
			t.Errorf("counter %s = 0, want > 0", ctr)
		}
	}
}

// TestSoakCellFig6 pins the helping construction's recovery: a kill can
// land mid-SC between the header install and the copy, and the recovered
// run must stay linearizable with all segments conserved.
func TestSoakCellFig6(t *testing.T) {
	res, err := RunSoakCell(RegisterSpec{Name: "fig6", New: newFig6}, soakTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("soak failed: %s", res.Violation)
	}
	if res.Kills == 0 || res.Restarts < int(res.Kills) {
		t.Fatalf("Kills = %d, Restarts = %d: recovery path not exercised", res.Kills, res.Restarts)
	}
}

func TestSoakConfigValidation(t *testing.T) {
	for name, cfg := range map[string]SoakConfig{
		"one proc":       {Procs: 1, Rounds: 1, OpsPerProc: 1},
		"zero rounds":    {Procs: 2, Rounds: 0, OpsPerProc: 1},
		"window blowout": {Procs: 8, Rounds: 1, OpsPerProc: 50},
		"neg budget":     {Procs: 2, Rounds: 1, OpsPerProc: 5, KillBudget: -1},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := RunSoakCell(RegisterSpec{Name: "fig5", New: newFig5}, cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestWedgeDemoFires is footnote 1 as an executable claim: crash the
// spin-lock holder inside its critical section and the watchdog that is
// silent across all five figures must declare the system wedged.
func TestWedgeDemoFires(t *testing.T) {
	cfg := soakTestConfig()
	cfg.WatchdogK = 20_000
	res, err := RunWedgeDemo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wedged {
		t.Fatalf("watchdog stayed silent on a crashed lock holder: %+v", res)
	}
	if res.Steps < res.K {
		t.Fatalf("wedge declared after only %d steps with K = %d", res.Steps, res.K)
	}
}

// TestRunSoakFullMatrix is the acceptance run in miniature: every figure
// soaks clean under the composed chaos plan while the lock-based baseline
// wedges, and the report round-trips through its schema.
func TestRunSoakFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak matrix in -short mode")
	}
	cfg := soakTestConfig()
	cfg.Rounds = 3
	cfg.OpsPerProc = 12
	rep, err := RunSoak(cfg, DefaultRegisters())
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("soak violations: %+v", v)
	}
	if len(rep.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.WatchdogWedged != 0 {
			t.Errorf("%s: watchdog wedged on a non-blocking figure", c.Register)
		}
		if c.Kills == 0 {
			t.Errorf("%s: kill plan never fired", c.Register)
		}
	}
	if !rep.Baseline.Wedged {
		t.Fatal("lock-based baseline did not wedge")
	}

	path := filepath.Join(t.TempDir(), "soak.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SoakReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SoakSchema {
		t.Fatalf("schema = %q, want %q", back.Schema, SoakSchema)
	}
}

// TestWedgeDemoFlightDump is the end-to-end flight-recorder claim: a
// wedged run with FlightDir set auto-emits exactly one llsc-flight/v1
// dump whose Chrome export parses, and a clean soak cell emits none.
func TestWedgeDemoFlightDump(t *testing.T) {
	dir := t.TempDir()
	cfg := soakTestConfig()
	cfg.WatchdogK = 20_000
	cfg.FlightDir = dir
	res, err := RunWedgeDemo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wedged {
		t.Fatalf("watchdog stayed silent: %+v", res)
	}
	if len(res.FlightDumps) != 1 {
		t.Fatalf("flight dumps = %v, want exactly 1", res.FlightDumps)
	}
	raw, err := os.ReadFile(res.FlightDumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema      string            `json:"schema"`
		Reason      string            `json:"reason"`
		MachineTail []json.RawMessage `json:"machine_tail"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Schema != "llsc-flight/v1" || dump.Reason != "wedged" {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.MachineTail) == 0 {
		t.Error("dump carries no machine tail")
	}
	chromePath := strings.TrimSuffix(res.FlightDumps[0], ".json") + ".chrome.json"
	chrome, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatalf("chrome sidecar missing: %v", err)
	}
	if _, err := trace.ValidateChrome(chrome); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
}

// TestSoakCellCleanRunNoFlightDump pins the inverse: a healthy figure
// with the recorder armed writes nothing.
func TestSoakCellCleanRunNoFlightDump(t *testing.T) {
	dir := t.TempDir()
	cfg := soakTestConfig()
	cfg.Rounds = 2
	cfg.FlightDir = dir
	res, err := RunSoakCell(RegisterSpec{Name: "fig5", New: newFig5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("soak failed: %s", res.Violation)
	}
	if len(res.FlightDumps) != 0 {
		t.Fatalf("clean run wrote dumps: %v", res.FlightDumps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean run left files in the flight dir: %v", entries)
	}
	// Tracing was live even though nothing dumped.
	if res.Counters["trace_events"] == 0 {
		t.Error("armed cell recorded no trace events")
	}
}
