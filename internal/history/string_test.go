package history

import (
	"strings"
	"testing"
)

func TestOpStringAllKinds(t *testing.T) {
	tests := []struct {
		op   Op
		want []string
	}{
		{Op{Proc: 0, Kind: KindRead, RetVal: 7, Call: 1, Return: 2}, []string{"p0", "Read()=7", "[1,2]"}},
		{Op{Proc: 1, Kind: KindWrite, Arg1: 9, Call: 3, Return: 4}, []string{"p1", "Write(9)"}},
		{Op{Proc: 2, Kind: KindCAS, Arg1: 1, Arg2: 2, RetBool: false, Call: 5, Return: 6}, []string{"CAS(1,2)", "false"}},
		{Op{Proc: 0, Kind: KindLL, RetVal: 3, Call: 7, Return: 8}, []string{"LL()=3"}},
		{Op{Proc: 0, Kind: KindVL, RetBool: true, Call: 9, Return: 10}, []string{"VL()=true"}},
		{Op{Proc: 0, Kind: KindSC, Arg1: 5, RetBool: true, Call: 11, Return: 12}, []string{"SC(5)=true"}},
		{Op{Proc: 3, Kind: Kind(42), Call: 13, Return: 14}, []string{"p3", "Kind(42)"}},
	}
	for _, tt := range tests {
		got := tt.op.String()
		for _, frag := range tt.want {
			if !strings.Contains(got, frag) {
				t.Errorf("Op.String() = %q, missing %q", got, frag)
			}
		}
	}
}
