package history

import (
	"strings"
	"sync"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindRead, "Read"}, {KindWrite, "Write"}, {KindCAS, "CAS"},
		{KindLL, "LL"}, {KindVL, "VL"}, {KindSC, "SC"}, {Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestOpString(t *testing.T) {
	o := Op{Proc: 2, Kind: KindCAS, Arg1: 3, Arg2: 4, RetBool: true, Call: 1, Return: 5}
	s := o.String()
	for _, frag := range []string{"p2", "CAS(3,4)", "true", "[1,5]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Op.String() = %q, missing %q", s, frag)
		}
	}
}

func TestRecorderClockMonotonic(t *testing.T) {
	r := NewRecorder(1)
	prev := r.Now()
	for i := 0; i < 100; i++ {
		cur := r.Now()
		if cur <= prev {
			t.Fatalf("clock not monotonic: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestRecorderMergeSortsByCall(t *testing.T) {
	r := NewRecorder(2)
	r.Record(1, Op{Proc: 1, Kind: KindRead, Call: 5, Return: 6})
	r.Record(0, Op{Proc: 0, Kind: KindRead, Call: 1, Return: 2})
	r.Record(1, Op{Proc: 1, Kind: KindRead, Call: 3, Return: 4})
	ops := r.Ops()
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Call > ops[i].Call {
			t.Fatalf("not sorted: %v", ops)
		}
	}
}

func TestRecorderConcurrentLanes(t *testing.T) {
	const procs = 8
	const perProc = 500
	r := NewRecorder(procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				call := r.Now()
				ret := r.Now()
				r.Record(p, Op{Proc: p, Kind: KindRead, Call: call, Return: ret})
			}
		}(p)
	}
	wg.Wait()
	ops := r.Ops()
	if len(ops) != procs*perProc {
		t.Fatalf("got %d ops, want %d", len(ops), procs*perProc)
	}
	seen := make(map[int64]bool, len(ops)*2)
	for _, o := range ops {
		if o.Return <= o.Call {
			t.Fatalf("op interval inverted: %v", o)
		}
		for _, ts := range []int64{o.Call, o.Return} {
			if seen[ts] {
				t.Fatalf("timestamp %d reused", ts)
			}
			seen[ts] = true
		}
	}
}
