// Package history records concurrent operation histories — invocation and
// response events with logical timestamps — for linearizability checking.
//
// The paper proves (in its full version) that each implementation is
// linearizable in the sense of Herlihy & Wing [9]. This repository checks
// the same property empirically: stress drivers record histories with this
// package and feed them to internal/linearizability.
package history

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind enumerates the operations of the combined CAS + LL/VL/SC register
// object.
type Kind uint8

// Operation kinds. KindRead and KindWrite cover plain register accesses;
// the rest mirror Figure 2.
const (
	KindRead Kind = iota + 1
	KindWrite
	KindCAS
	KindLL
	KindVL
	KindSC
)

// String returns the conventional mnemonic.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "Read"
	case KindWrite:
		return "Write"
	case KindCAS:
		return "CAS"
	case KindLL:
		return "LL"
	case KindVL:
		return "VL"
	case KindSC:
		return "SC"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one completed operation: what was invoked, what it returned, and
// the logical interval [Call, Return] during which it executed.
type Op struct {
	Proc    int
	Kind    Kind
	Arg1    uint64 // CAS old; Write value; SC value
	Arg2    uint64 // CAS new
	RetVal  uint64 // Read/LL result
	RetBool bool   // CAS/VL/SC result
	Call    int64
	Return  int64
}

// String formats the op for failure messages.
func (o Op) String() string {
	switch o.Kind {
	case KindRead:
		return fmt.Sprintf("p%d Read()=%d @[%d,%d]", o.Proc, o.RetVal, o.Call, o.Return)
	case KindWrite:
		return fmt.Sprintf("p%d Write(%d) @[%d,%d]", o.Proc, o.Arg1, o.Call, o.Return)
	case KindCAS:
		return fmt.Sprintf("p%d CAS(%d,%d)=%v @[%d,%d]", o.Proc, o.Arg1, o.Arg2, o.RetBool, o.Call, o.Return)
	case KindLL:
		return fmt.Sprintf("p%d LL()=%d @[%d,%d]", o.Proc, o.RetVal, o.Call, o.Return)
	case KindVL:
		return fmt.Sprintf("p%d VL()=%v @[%d,%d]", o.Proc, o.RetBool, o.Call, o.Return)
	case KindSC:
		return fmt.Sprintf("p%d SC(%d)=%v @[%d,%d]", o.Proc, o.Arg1, o.RetBool, o.Call, o.Return)
	default:
		return fmt.Sprintf("p%d %v @[%d,%d]", o.Proc, o.Kind, o.Call, o.Return)
	}
}

// Recorder collects operations from concurrent drivers. Each driver
// (goroutine) appends to its own lane, so recording adds no inter-driver
// synchronization beyond the logical clock itself.
type Recorder struct {
	clock atomic.Int64
	lanes [][]Op
}

// NewRecorder creates a Recorder with one lane per process.
func NewRecorder(procs int) *Recorder {
	return &Recorder{lanes: make([][]Op, procs)}
}

// Now draws the next logical timestamp. Drivers call it immediately before
// invoking an operation (the Call stamp) and immediately after it returns
// (the Return stamp).
func (r *Recorder) Now() int64 {
	return r.clock.Add(1)
}

// Record appends a completed op to proc's lane. Only the goroutine driving
// proc may call it for that lane.
func (r *Recorder) Record(proc int, op Op) {
	r.lanes[proc] = append(r.lanes[proc], op)
}

// Ops merges all lanes into one history sorted by Call time. Call it only
// after all drivers have finished.
func (r *Recorder) Ops() []Op {
	var out []Op
	for _, lane := range r.lanes {
		out = append(out, lane...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call < out[j].Call })
	return out
}
