package bench

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketOfMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, 1, 2, 5, 10, 100, time.Microsecond,
		10 * time.Microsecond, time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second} {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %v: %d after %d", d, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%v) = %d out of range", d, b)
		}
		prev = b
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1)
	// 900 fast ops at ~100ns, 100 slow at ~1ms.
	for i := 0; i < 900; i++ {
		h.Record(0, 100*time.Nanosecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(0, time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 50*time.Nanosecond || p50 > 300*time.Nanosecond {
		t.Errorf("p50 = %v, want ≈100ns", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500*time.Microsecond || p99 > 3*time.Millisecond {
		t.Errorf("p99 = %v, want ≈1ms", p99)
	}
	mean := h.Mean()
	want := (900*100*time.Nanosecond + 100*time.Millisecond) / 1000
	if mean < want/2 || mean > want*2 {
		t.Errorf("mean = %v, want ≈%v", mean, want)
	}
	for _, frag := range []string{"n=1000", "p50=", "p99="} {
		if !strings.Contains(h.String(), frag) {
			t.Errorf("String() missing %q: %s", frag, h.String())
		}
	}
}

func TestHistogramEmptyAndClamping(t *testing.T) {
	h := NewHistogram(1)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram not zero")
	}
	h.Record(0, time.Minute) // beyond the top bucket: clamped
	if h.Quantile(2) == 0 || h.Quantile(-1) == 0 {
		t.Error("out-of-range quantiles mishandled")
	}
}

func TestHistogramShardsMergeConcurrently(t *testing.T) {
	const workers = 4
	const each = 10000
	h := NewHistogram(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(w, time.Duration(w+1)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*each)
	}
}

func TestRunLatency(t *testing.T) {
	res := RunLatency("lat", 2, 500, func(worker, op int) {})
	if res.Ops != 1000 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.Hist.Count() != 1000 {
		t.Fatalf("Hist.Count = %d", res.Hist.Count())
	}
	if res.Hist.Quantile(0.99) <= 0 {
		t.Error("p99 not positive")
	}
}
