package bench

import (
	"fmt"
	"testing"
)

// TestCommittedContentionBaseline pins the headline claim of the
// contention sweep against the committed BENCH_contention.json at the
// repository root: for the stack and the plain counter at 8+ workers,
// exponential backoff or the adaptive policy must beat retry-immediately.
// Regenerate the file with `make bench-json` if the sweep changes shape.
func TestCommittedContentionBaseline(t *testing.T) {
	recs, err := ReadRecordsFile("../../BENCH_contention.json")
	if err != nil {
		t.Fatalf("committed contention baseline missing or unreadable: %v", err)
	}
	cells := make(map[string]float64, len(recs))
	for _, r := range recs {
		cells[r.Name] = r.NsPerOp
	}
	get := func(structure, policy string, workers int) float64 {
		name := fmt.Sprintf("contention/%s/%s/p%d", structure, policy, workers)
		ns, ok := cells[name]
		if !ok || ns <= 0 {
			t.Fatalf("baseline cell %q missing", name)
		}
		return ns
	}
	for _, structure := range []string{"stack", "counter"} {
		for _, workers := range []int{8, 16} {
			none := get(structure, "none", workers)
			backoff := get(structure, "backoff", workers)
			adaptive := get(structure, "adaptive", workers)
			best := backoff
			if adaptive < best {
				best = adaptive
			}
			if best >= none {
				t.Errorf("%s/p%d: none=%.0f ns/op, backoff=%.0f, adaptive=%.0f — managed contention does not win",
					structure, workers, none, backoff, adaptive)
			}
		}
	}
}
