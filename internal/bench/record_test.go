package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestResultGuardsDegenerateConfigs(t *testing.T) {
	cases := []Result{
		{Name: "zero workers", Workers: 0, Ops: 100, Elapsed: time.Second},
		{Name: "negative workers", Workers: -1, Ops: 100, Elapsed: time.Second},
		{Name: "zero ops", Workers: 4, Ops: 0, Elapsed: time.Second},
		{Name: "zero elapsed", Workers: 4, Ops: 0, Elapsed: 0},
	}
	for _, r := range cases {
		if got := r.NsPerOp(); got != 0 {
			t.Errorf("%s: NsPerOp() = %v, want 0", r.Name, got)
		}
	}
	for _, r := range cases[:3] {
		if got := r.OpsPerSec(); got != 0 {
			t.Errorf("%s: OpsPerSec() = %v, want 0", r.Name, got)
		}
	}
	// OpsPerSec with zero elapsed but real work must also not divide by zero.
	r := Result{Workers: 4, Ops: 100, Elapsed: 0}
	if got := r.OpsPerSec(); got != 0 {
		t.Errorf("zero elapsed: OpsPerSec() = %v, want 0", got)
	}
}

func TestRunWithZeroWorkers(t *testing.T) {
	r := Run("none", 0, 1000, func(w, i int) { t.Error("fn must not run") })
	if r.Ops != 0 || r.NsPerOp() != 0 || r.OpsPerSec() != 0 {
		t.Errorf("zero-worker Run = %+v (NsPerOp %v, OpsPerSec %v), want all zero",
			r, r.NsPerOp(), r.OpsPerSec())
	}
}

func TestEmptyTableRendering(t *testing.T) {
	var buf bytes.Buffer
	NewTable("empty", "a", "bb").Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== empty ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "bb") {
		t.Errorf("missing headers:\n%s", out)
	}
	// Headers + underline only; no data rows, no panic.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 2 {
		t.Errorf("empty table has %d newlines, want 2 (title, headers, underline):\n%q", lines, out)
	}
}

func TestRunObservedCountsRetriesAndLatency(t *testing.T) {
	var retries, latency obs.Hist
	r := RunObserved("obs", 3, 50, &retries, &latency, func(w, i int) int {
		return i % 4
	})
	if r.Ops != 150 {
		t.Fatalf("Ops = %d, want 150", r.Ops)
	}
	if got := retries.Count(); got != 150 {
		t.Errorf("retries.Count() = %d, want 150", got)
	}
	// Each worker contributes sum 0+1+2+3 per 4 ops: 50 ops -> 0..3 repeated,
	// 12 full cycles (sum 72) + ops 48,49 (retries 0,1) = 73 per worker.
	if got := retries.Sum(); got != 3*73 {
		t.Errorf("retries.Sum() = %d, want %d", got, 3*73)
	}
	if got := latency.Count(); got != 150 {
		t.Errorf("latency.Count() = %d, want 150", got)
	}
}

func TestRunObservedNilHists(t *testing.T) {
	ran := 0
	r := RunObserved("nil", 1, 10, nil, nil, func(w, i int) int { ran++; return 0 })
	if ran != 10 || r.Ops != 10 {
		t.Errorf("ran %d ops, Result.Ops = %d, want 10/10", ran, r.Ops)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	m := obs.NewWithStripes(1)
	m.Inc(obs.CtrSC)
	m.Inc(obs.CtrSCFailInterference)
	var retries obs.Hist
	retries.Observe(0)
	retries.Observe(3)

	rec := NewRecord(Result{
		Name: "e2/cas", Workers: 4, Ops: 1000, Elapsed: 2 * time.Millisecond,
	}, m.Snapshot()).WithHists(&retries, nil)

	if rec.Schema != Schema {
		t.Fatalf("Schema = %q, want %q", rec.Schema, Schema)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Schema-stability: these key names are the machine-readable contract.
	for _, key := range []string{`"schema":"llsc-bench/v1"`, `"name":"e2/cas"`, `"workers":4`,
		`"ops":1000`, `"elapsed_ns"`, `"ns_per_op"`, `"ops_per_sec"`,
		`"sc":1`, `"sc_fail_interference":1`, `"retries"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s:\n%s", key, data)
		}
	}
	if strings.Contains(string(data), `"latency"`) {
		t.Errorf("empty latency histogram should be omitted:\n%s", data)
	}

	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["sc"] != 1 || back.Retries == nil || back.Retries.Count != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestNewRecordOmitsZeroCounters(t *testing.T) {
	rec := NewRecord(Result{Name: "n", Workers: 1, Ops: 1, Elapsed: time.Microsecond}, obs.Snapshot{})
	if rec.Counters != nil {
		t.Errorf("Counters = %v, want nil for a zero snapshot", rec.Counters)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "counters") {
		t.Errorf("zero counters should be omitted from JSON:\n%s", data)
	}
}

func TestWriteRecordsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	recs := []Record{
		NewRecord(Result{Name: "a", Workers: 1, Ops: 10, Elapsed: time.Millisecond}, obs.Snapshot{}),
		NewRecord(Result{Name: "b", Workers: 2, Ops: 20, Elapsed: time.Millisecond}, obs.Snapshot{}),
	}
	if err := WriteRecordsFile(path, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("file is not valid JSON: %v\n%s", err, data)
	}
	if len(back) != 2 || back[0].Name != "a" || back[1].Name != "b" {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind")
	}
}

func TestRecordWithAttribution(t *testing.T) {
	var retry, help obs.Hist
	retry.Observe(100)
	retry.Observe(300)
	help.Observe(50)
	rec := NewRecord(Result{Name: "attr"}, obs.Snapshot{}).WithAttribution(&retry, &help)
	if rec.RetryNs == nil || rec.RetryNs.Count != 2 {
		t.Fatalf("retry_ns = %+v", rec.RetryNs)
	}
	if rec.HelpNs == nil || rec.HelpNs.Count != 1 {
		t.Fatalf("help_ns = %+v", rec.HelpNs)
	}
	// Empty or nil histograms stay out of the JSON.
	bare := NewRecord(Result{Name: "bare"}, obs.Snapshot{}).WithAttribution(nil, &obs.Hist{})
	if bare.RetryNs != nil || bare.HelpNs != nil {
		t.Fatal("empty attribution must be dropped")
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"retry_ns"`) || !strings.Contains(string(raw), `"help_ns"`) {
		t.Errorf("attribution fields missing from JSON: %s", raw)
	}
}
