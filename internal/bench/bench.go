// Package bench is the experiment harness shared by the cmd/llscbench
// binary and the repository's benchmark tests: fixed-work concurrent
// drivers, parameter sweeps, and ASCII table rendering for the experiment
// results recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Result is one measured cell: a named configuration, its total operation
// count, and the wall-clock time the operations took across all workers.
type Result struct {
	Name    string
	Workers int
	Ops     uint64
	Elapsed time.Duration
}

// OpsPerSec returns the aggregate throughput. Degenerate configurations
// (no ops, no workers, or a zero/negative elapsed span) report 0 rather
// than NaN or Inf, so downstream tables and JSON stay well-formed.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 || r.Workers <= 0 || r.Ops == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// NsPerOp returns the mean latency in nanoseconds per operation,
// aggregated across workers (wall time × workers ÷ ops). Degenerate
// configurations report 0, as for OpsPerSec.
func (r Result) NsPerOp() float64 {
	if r.Ops == 0 || r.Workers <= 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) * float64(r.Workers) / float64(r.Ops)
}

// Run starts one goroutine per worker, each executing fn(worker) exactly
// opsPerWorker times, and measures the wall-clock span from a common
// start signal to the last completion.
func Run(name string, workers, opsPerWorker int, fn func(worker, op int)) Result {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerWorker; i++ {
				fn(w, i)
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return Result{
		Name:    name,
		Workers: workers,
		Ops:     uint64(workers) * uint64(opsPerWorker),
		Elapsed: time.Since(t0),
	}
}

// Table accumulates rows for aligned text output.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are Sprint-formatted.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			switch {
			case v < 10*time.Microsecond:
				row[i] = v.String() // keep nanosecond resolution
			case v < 10*time.Millisecond:
				row[i] = v.Round(time.Microsecond).String()
			default:
				row[i] = v.Round(100 * time.Microsecond).String()
			}
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.headers, "\t"))
	underline := make([]string, len(t.headers))
	for i, h := range t.headers {
		underline[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// Throughput formats ops/sec in engineering units (K/M).
func Throughput(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.1fK", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f", opsPerSec)
	}
}
