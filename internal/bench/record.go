package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Schema identifies the JSON record layout emitted by this package.
// Consumers should reject records with an unknown schema; producers bump
// the version suffix on any incompatible change (renaming or retyping a
// field is incompatible; adding a field is not).
const Schema = "llsc-bench/v1"

// Record is the machine-readable form of one benchmark cell: the Result
// measurements plus, when instrumentation was attached, the obs counter
// deltas observed during the run and retry/latency histograms from
// RunObserved. Zero-valued optional fields are omitted from the JSON.
type Record struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	Workers   int               `json:"workers"`
	Ops       uint64            `json:"ops"`
	ElapsedNs int64             `json:"elapsed_ns"`
	NsPerOp   float64           `json:"ns_per_op"`
	OpsPerSec float64           `json:"ops_per_sec"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
	Retries   *obs.HistSnapshot `json:"retries,omitempty"`
	Latency   *obs.HistSnapshot `json:"latency,omitempty"`
	Backoff   *obs.HistSnapshot `json:"backoff_ns,omitempty"`
	// RetryNs and HelpNs are the per-operation latency attribution from
	// span tracing (trace.Attribution): nanoseconds an operation spent in
	// failed attempts plus backoff, and in helping another process's copy,
	// respectively. Additive llsc-bench/v1 fields.
	RetryNs *obs.HistSnapshot `json:"retry_ns,omitempty"`
	HelpNs  *obs.HistSnapshot `json:"help_ns,omitempty"`
	// Substrate names the machine substrate the cell's machines ran on
	// ("sim" or "native", see internal/machine.Substrate); empty for
	// machine-free cells, where no substrate is involved. Additive
	// llsc-bench/v1 field.
	Substrate string `json:"substrate,omitempty"`
	// Scenario and VirtualTicks identify discrete-event simulator cells
	// (internal/sim): the scenario the cell ran under and the run's
	// length on the simulator's virtual clock. For such cells ElapsedNs
	// holds virtual ticks, not wall nanoseconds — VirtualTicks being
	// non-zero is the marker that time-derived fields are virtual.
	// Additive llsc-bench/v1 fields.
	Scenario     string `json:"scenario,omitempty"`
	VirtualTicks uint64 `json:"virtual_ticks,omitempty"`
}

// NewRecord converts a Result into a Record. counters is the obs counter
// delta attributable to the run (pass a zero Snapshot when no metrics
// were attached); only non-zero counters are recorded.
func NewRecord(r Result, counters obs.Snapshot) Record {
	rec := Record{
		Schema:    Schema,
		Name:      r.Name,
		Workers:   r.Workers,
		Ops:       r.Ops,
		ElapsedNs: r.Elapsed.Nanoseconds(),
		NsPerOp:   r.NsPerOp(),
		OpsPerSec: r.OpsPerSec(),
	}
	if nz := counters.NonZero(); len(nz) > 0 {
		rec.Counters = nz
	}
	return rec
}

// WithHists attaches retry and latency histogram snapshots to the record;
// nil or empty histograms are dropped so the JSON stays minimal.
func (rec Record) WithHists(retries, latency *obs.Hist) Record {
	if retries.Count() > 0 {
		s := retries.Snapshot()
		rec.Retries = &s
	}
	if latency.Count() > 0 {
		s := latency.Snapshot()
		rec.Latency = &s
	}
	return rec
}

// WithBackoff attaches the contention policy's per-wait duration
// histogram (see contention.Policy.SetBackoffHist); nil or empty
// histograms are dropped.
func (rec Record) WithBackoff(backoff *obs.Hist) Record {
	if backoff.Count() > 0 {
		s := backoff.Snapshot()
		rec.Backoff = &s
	}
	return rec
}

// WithSubstrate stamps the machine substrate the cell ran on; the empty
// string (machine-free cell) leaves the field unset.
func (rec Record) WithSubstrate(sub string) Record {
	rec.Substrate = sub
	return rec
}

// WithAttribution attaches the span tracer's latency-attribution
// histograms (where an operation's time went: retrying vs helping); nil
// or empty histograms are dropped.
func (rec Record) WithAttribution(retryNs, helpNs *obs.Hist) Record {
	if retryNs.Count() > 0 {
		s := retryNs.Snapshot()
		rec.RetryNs = &s
	}
	if helpNs.Count() > 0 {
		s := helpNs.Snapshot()
		rec.HelpNs = &s
	}
	return rec
}

// WithSim marks the record as a discrete-event simulator cell: scenario
// names the sim scenario, ticks the run length on the virtual clock.
func (rec Record) WithSim(scenario string, ticks uint64) Record {
	rec.Scenario = scenario
	rec.VirtualTicks = ticks
	return rec
}

// ReadRecords reads a record array from r, rejecting records with an
// unknown schema.
func ReadRecords(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("bench: parsing records: %w", err)
	}
	for i, rec := range recs {
		if rec.Schema != Schema {
			return nil, fmt.Errorf("bench: record %d has schema %q, want %q", i, rec.Schema, Schema)
		}
	}
	return recs, nil
}

// ReadRecordsFile reads a BENCH_*.json record array written by
// WriteRecordsFile, rejecting records with an unknown schema.
func ReadRecordsFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return recs, nil
}

// WriteRecords writes recs to w as indented JSON, one top-level array.
func WriteRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteRecordsFile writes recs to path (atomically via rename, so a
// crashed run never leaves a truncated file).
func WriteRecordsFile(path string, recs []Record) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteRecords(f, recs); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
