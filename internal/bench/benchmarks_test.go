package bench

import (
	"testing"

	"repro/internal/obs"
)

// The harness's own overhead, so experiment numbers can be judged
// against it. CI runs these with -benchtime=1x as a smoke test that the
// harness executes end to end.

func BenchmarkRunObservedOverhead(b *testing.B) {
	var retries obs.Hist
	for i := 0; i < b.N; i++ {
		RunObserved("overhead", 2, 1000, &retries, nil, func(w, op int) int {
			return 0
		})
	}
}

func BenchmarkRunObservedWithLatency(b *testing.B) {
	var retries, latency obs.Hist
	for i := 0; i < b.N; i++ {
		RunObserved("overhead", 2, 1000, &retries, &latency, func(w, op int) int {
			return 0
		})
	}
}

func BenchmarkHistObserve(b *testing.B) {
	var h obs.Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
