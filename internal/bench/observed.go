package bench

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// RunObserved is Run with per-operation instrumentation: each call of fn
// returns the number of retries the operation needed (0 for first-try
// success), which is recorded into the retries histogram, and the
// wall-clock duration of each operation is recorded into the latency
// histogram. Either histogram may be nil to skip that measurement (a nil
// latency histogram also skips the per-op clock reads, keeping the loop
// as tight as Run's).
func RunObserved(name string, workers, opsPerWorker int, retries, latency *obs.Hist, fn func(worker, op int) int) Result {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			if latency == nil {
				for i := 0; i < opsPerWorker; i++ {
					retries.Observe(uint64(fn(w, i)))
				}
				return
			}
			for i := 0; i < opsPerWorker; i++ {
				t0 := time.Now()
				r := fn(w, i)
				latency.ObserveDuration(time.Since(t0))
				retries.Observe(uint64(r))
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return Result{
		Name:    name,
		Workers: workers,
		Ops:     uint64(workers) * uint64(opsPerWorker),
		Elapsed: time.Since(t0),
	}
}
