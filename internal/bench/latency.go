package bench

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a lock-free-enough (per-worker sharded) log-bucketed
// latency histogram: buckets are powers of √2 from 1ns to ~1s, giving
// ≤ ~6% quantile error with a few dozen buckets and no allocation on the
// record path.
type Histogram struct {
	shards []histShard
}

type histShard struct {
	_       [7]uint64 // pad to keep shards on separate cache lines
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// histBuckets covers 1ns..~1.4s in √2 steps (2^(i/2) ns).
const histBuckets = 62

// NewHistogram creates a histogram with one shard per worker; worker w
// must record only through index w (no synchronization on the hot path).
func NewHistogram(workers int) *Histogram {
	return &Histogram{shards: make([]histShard, workers)}
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1 {
		return 0
	}
	// index = floor(2 * log2(ns)); bits.Len-style approximation.
	b := int(2 * math.Log2(float64(ns)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one observation from the given worker.
func (h *Histogram) Record(worker int, d time.Duration) {
	s := &h.shards[worker]
	s.buckets[bucketOf(d)]++
	s.count++
	s.sum += uint64(d.Nanoseconds())
}

// merge folds all shards into one snapshot.
func (h *Histogram) merge() (buckets [histBuckets]uint64, count, sum uint64) {
	for i := range h.shards {
		s := &h.shards[i]
		for b, n := range s.buckets {
			buckets[b] += n
		}
		count += s.count
		sum += s.sum
	}
	return
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	_, c, _ := h.merge()
	return c
}

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	_, c, s := h.merge()
	if c == 0 {
		return 0
	}
	return time.Duration(s / c)
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]),
// accurate to one √2 bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	buckets, count, _ := h.merge()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(count))
	if target >= count {
		target = count - 1
	}
	var seen uint64
	for b, n := range buckets {
		seen += n
		if seen > target {
			// Upper edge of bucket b: 2^((b+1)/2) ns.
			return time.Duration(math.Pow(2, float64(b+1)/2))
		}
	}
	return time.Duration(math.Pow(2, float64(histBuckets)/2))
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
}

// LatencyResult extends Result with the per-op latency distribution.
type LatencyResult struct {
	Result
	Hist *Histogram
}

// RunLatency is Run with per-operation latency recording: fn is timed
// individually for each call. The timing overhead (two clock reads per
// op) is real; use it for distribution shape, and plain Run for peak
// throughput.
func RunLatency(name string, workers, opsPerWorker int, fn func(worker, op int)) LatencyResult {
	hist := NewHistogram(workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerWorker; i++ {
				t0 := time.Now()
				fn(w, i)
				hist.Record(w, time.Since(t0))
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return LatencyResult{
		Result: Result{
			Name:    name,
			Workers: workers,
			Ops:     uint64(workers) * uint64(opsPerWorker),
			Elapsed: time.Since(t0),
		},
		Hist: hist,
	}
}
