package bench

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllOps(t *testing.T) {
	var count atomic.Uint64
	res := Run("test", 4, 1000, func(worker, op int) {
		count.Add(1)
	})
	if count.Load() != 4000 {
		t.Errorf("executed %d ops, want 4000", count.Load())
	}
	if res.Ops != 4000 {
		t.Errorf("Result.Ops = %d, want 4000", res.Ops)
	}
	if res.Workers != 4 {
		t.Errorf("Result.Workers = %d, want 4", res.Workers)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not positive")
	}
}

func TestRunPassesWorkerAndOpIndices(t *testing.T) {
	var seen [2][3]atomic.Bool
	Run("idx", 2, 3, func(worker, op int) {
		seen[worker][op].Store(true)
	})
	for w := 0; w < 2; w++ {
		for o := 0; o < 3; o++ {
			if !seen[w][o].Load() {
				t.Errorf("fn(%d,%d) never called", w, o)
			}
		}
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Ops: 1000, Workers: 2, Elapsed: time.Second}
	if got := r.OpsPerSec(); got != 1000 {
		t.Errorf("OpsPerSec = %v, want 1000", got)
	}
	if got := r.NsPerOp(); got != 2e6 {
		t.Errorf("NsPerOp = %v, want 2e6", got)
	}
	zero := Result{}
	if zero.OpsPerSec() != 0 || zero.NsPerOp() != 0 {
		t.Error("zero Result math not zero")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 3.14159)
	tbl.AddRow("beta", 42)
	tbl.AddRow("gamma", 1500*time.Microsecond)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, frag := range []string{"== demo ==", "name", "value", "alpha", "3.1", "beta", "42", "1.5ms"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
}

func TestThroughputUnits(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{5, "5"}, {1500, "1.5K"}, {2.5e6, "2.50M"},
	}
	for _, tt := range tests {
		if got := Throughput(tt.in); got != tt.want {
			t.Errorf("Throughput(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
