package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/obs"
)

// FuzzBenchRecordRoundTrip pins the llsc-bench/v1 record schema,
// including the sim-cell fields (scenario, virtual_ticks) this schema
// gained additively: any record assembled from fuzzed measurements must
// survive WriteRecords → ReadRecords byte-exactly on a second
// serialization, and its JSON keys must stay within the frozen v1 key
// set — a new field is fine (additive), but a renamed or retyped one
// breaks the decode-equality check, and a key outside the frozen set
// fails the key audit, forcing a deliberate schema-version bump.
func FuzzBenchRecordRoundTrip(f *testing.F) {
	f.Add("cell", 4, uint64(100), int64(5000), uint64(3), uint64(17), "hotspot", uint64(20000), false)
	f.Add("", 0, uint64(0), int64(0), uint64(0), uint64(0), "", uint64(0), true)
	f.Add("sim/none-noelim-s1", 64, uint64(1)<<40, int64(1)<<50, uint64(9), uint64(1), "smoke", uint64(1)<<30, true)
	f.Fuzz(func(t *testing.T, name string, workers int, ops uint64, elapsedNs int64,
		retryObs, latObs uint64, scenario string, ticks uint64, withCounters bool) {
		if !utf8.ValidString(name) || !utf8.ValidString(scenario) {
			// encoding/json coerces invalid UTF-8 to U+FFFD; that is JSON's
			// behaviour, not a schema property, so such strings can't
			// round-trip byte-exactly and are out of scope here.
			t.Skip("invalid UTF-8 cannot round-trip through JSON")
		}
		if elapsedNs < 0 {
			elapsedNs = -elapsedNs
		}
		var retries, latency obs.Hist
		for i := uint64(0); i < retryObs%64; i++ {
			retries.Observe(i * i)
		}
		for i := uint64(0); i < latObs%64; i++ {
			latency.Observe(i << (i % 32))
		}
		met := obs.New()
		if withCounters {
			met.Inc(obs.CtrSimRequests)
			met.Inc(obs.CtrSimCompleted)
			met.Inc(obs.CtrLL)
		}
		rec := NewRecord(Result{
			Name:    name,
			Workers: workers,
			Ops:     ops,
			Elapsed: time.Duration(elapsedNs),
		}, met.Snapshot()).WithHists(&retries, &latency).WithSim(scenario, ticks)

		var buf bytes.Buffer
		if err := WriteRecords(&buf, []Record{rec}); err != nil {
			t.Fatalf("WriteRecords: %v", err)
		}
		first := buf.Bytes()
		recs, err := ReadRecords(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("ReadRecords: %v", err)
		}
		if len(recs) != 1 {
			t.Fatalf("read %d records, want 1", len(recs))
		}
		if !reflect.DeepEqual(recs[0], rec) {
			t.Fatalf("record mutated in round trip:\n got %+v\nwant %+v", recs[0], rec)
		}
		var buf2 bytes.Buffer
		if err := WriteRecords(&buf2, recs); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatal("second serialization differs from the first")
		}
		auditRecordKeys(t, first)
	})
}

// v1RecordKeys is the frozen llsc-bench/v1 key set. Extending the
// schema means adding a key HERE in the same change that adds the
// field — the audit makes dropping or renaming one a loud failure.
var v1RecordKeys = map[string]bool{
	"schema": true, "name": true, "workers": true, "ops": true,
	"elapsed_ns": true, "ns_per_op": true, "ops_per_sec": true,
	"counters": true, "retries": true, "latency": true, "backoff_ns": true,
	"retry_ns": true, "help_ns": true, "substrate": true,
	// Additive sim-cell fields (internal/sim).
	"scenario": true, "virtual_ticks": true,
}

// auditRecordKeys decodes the serialized records generically and checks
// every top-level record key is in the frozen v1 set.
func auditRecordKeys(t *testing.T, data []byte) {
	t.Helper()
	var generic []map[string]json.RawMessage
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatalf("generic decode: %v", err)
	}
	for _, m := range generic {
		for k := range m {
			if !v1RecordKeys[k] {
				t.Fatalf("record key %q is not in the frozen %s key set; bump the schema or extend the audit deliberately", k, Schema)
			}
		}
		if string(m["schema"]) != `"`+Schema+`"` {
			t.Fatalf("schema field %s, want %q", m["schema"], Schema)
		}
	}
}

// TestRecordSchemaKeyAudit keeps the audit honest outside fuzzing: a
// fully-populated record (every optional field set) must serialize to
// exactly the frozen key set — no more, no fewer.
func TestRecordSchemaKeyAudit(t *testing.T) {
	var h obs.Hist
	h.Observe(3)
	met := obs.New()
	met.Inc(obs.CtrLL)
	rec := NewRecord(Result{Name: "full", Workers: 2, Ops: 10, Elapsed: time.Second}, met.Snapshot()).
		WithHists(&h, &h).WithBackoff(&h).WithAttribution(&h, &h).
		WithSubstrate("sim").WithSim("smoke", 123)
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	var missing []string
	for k := range v1RecordKeys {
		if _, ok := m[k]; !ok {
			missing = append(missing, k)
		}
	}
	if len(missing) != 0 {
		t.Errorf("fully-populated record omits frozen keys %v — field removed or audit stale", strings.Join(missing, ", "))
	}
	for k := range m {
		if !v1RecordKeys[k] {
			t.Errorf("record emits key %q outside the frozen set — extend v1RecordKeys in the same change", k)
		}
	}
}
