package bench

import (
	"fmt"
	"sort"
)

// Cross-run benchmark comparison. Raw ns/op is not comparable across
// machines (or across a loaded vs idle CI runner), so Diff first
// normalizes: the median current/baseline ratio across all common cells
// estimates the overall machine-speed factor between the two runs, and
// each cell is then judged by how far it deviates from that factor. A
// uniform 2× slowdown (slower runner) flags nothing; one cell that is 2×
// slower while its siblings are unchanged is a real regression.

// DiffOptions parametrizes Diff.
type DiffOptions struct {
	// Threshold is the allowed fractional slowdown after normalization;
	// 0.30 flags cells more than 30% slower than the run-wide trend.
	Threshold float64
}

// CellDiff compares one benchmark cell across the two runs.
type CellDiff struct {
	Name       string  // cell name, e.g. "contention/stack/backoff/p8"
	BaseNsOp   float64 // baseline ns/op
	CurNsOp    float64 // current ns/op
	Ratio      float64 // CurNsOp / BaseNsOp, raw
	Normalized float64 // Ratio divided by the run-wide median ratio
	Regressed  bool    // Normalized > 1 + Threshold
}

// DiffReport is the outcome of comparing two record sets.
type DiffReport struct {
	MedianRatio float64    // machine-speed factor between the runs
	Cells       []CellDiff // one per cell present in both runs, by name
	Regressions int        // number of cells with Regressed set
}

// Diff compares current against baseline records, matching cells by name.
// Cells present in only one run are ignored (experiments may grow); it is
// an error for the runs to share no cells at all, since that means the
// comparison is vacuous.
func Diff(baseline, current []Record, opt DiffOptions) (DiffReport, error) {
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var cells []CellDiff
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			continue
		}
		cells = append(cells, CellDiff{
			Name:     cur.Name,
			BaseNsOp: b.NsPerOp,
			CurNsOp:  cur.NsPerOp,
			Ratio:    cur.NsPerOp / b.NsPerOp,
		})
	}
	if len(cells) == 0 {
		return DiffReport{}, fmt.Errorf("bench: no common cells between baseline (%d records) and current (%d records)", len(baseline), len(current))
	}
	ratios := make([]float64, len(cells))
	for i, c := range cells {
		ratios[i] = c.Ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	rep := DiffReport{MedianRatio: median}
	for _, c := range cells {
		c.Normalized = c.Ratio / median
		c.Regressed = c.Normalized > 1+opt.Threshold
		if c.Regressed {
			rep.Regressions++
		}
		rep.Cells = append(rep.Cells, c)
	}
	sort.Slice(rep.Cells, func(i, j int) bool { return rep.Cells[i].Name < rep.Cells[j].Name })
	return rep, nil
}
