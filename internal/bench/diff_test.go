package bench

import (
	"path/filepath"
	"reflect"
	"testing"
)

func rec(name string, nsop float64) Record {
	return Record{Schema: Schema, Name: name, NsPerOp: nsop}
}

func TestDiffUniformSlowdownIsNotARegression(t *testing.T) {
	base := []Record{rec("a", 100), rec("b", 200), rec("c", 50)}
	cur := []Record{rec("a", 300), rec("b", 600), rec("c", 150)} // 3x across the board
	rep, err := Diff(base, cur, DiffOptions{Threshold: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MedianRatio != 3 {
		t.Fatalf("median ratio %v, want 3", rep.MedianRatio)
	}
	if rep.Regressions != 0 {
		t.Fatalf("uniform slowdown flagged %d regressions: %+v", rep.Regressions, rep.Cells)
	}
}

func TestDiffFlagsOutlierCell(t *testing.T) {
	base := []Record{rec("a", 100), rec("b", 100), rec("c", 100), rec("d", 100), rec("e", 100)}
	cur := []Record{rec("a", 110), rec("b", 105), rec("c", 100), rec("d", 108), rec("e", 200)}
	rep, err := Diff(base, cur, DiffOptions{Threshold: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %+v", rep.Regressions, rep.Cells)
	}
	for _, c := range rep.Cells {
		if c.Regressed != (c.Name == "e") {
			t.Fatalf("cell %q regressed=%v: %+v", c.Name, c.Regressed, c)
		}
	}
}

func TestDiffJustUnderThresholdPasses(t *testing.T) {
	base := []Record{rec("a", 100), rec("b", 100), rec("c", 100)}
	cur := []Record{rec("a", 100), rec("b", 100), rec("c", 129)}
	rep, err := Diff(base, cur, DiffOptions{Threshold: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("29%% deviation flagged: %+v", rep.Cells)
	}
}

func TestDiffIgnoresUnmatchedCells(t *testing.T) {
	base := []Record{rec("a", 100), rec("gone", 1)}
	cur := []Record{rec("a", 100), rec("new", 999)}
	rep, err := Diff(base, cur, DiffOptions{Threshold: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Name != "a" {
		t.Fatalf("want only cell a compared, got %+v", rep.Cells)
	}
}

func TestDiffNoCommonCellsErrors(t *testing.T) {
	if _, err := Diff([]Record{rec("a", 1)}, []Record{rec("b", 1)}, DiffOptions{}); err == nil {
		t.Fatal("vacuous comparison did not error")
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	in := []Record{rec("a", 12.5), rec("b", 7)}
	if err := WriteRecordsFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReadRecordsFileRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	bad := []Record{{Schema: "llsc-bench/v999", Name: "a", NsPerOp: 1}}
	if err := WriteRecordsFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecordsFile(path); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
