package recovery

import (
	"os"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func TestWatchdogVerdicts(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	var prog uint64
	dog, err := NewWatchdog(m, func() uint64 { return prog }, 10)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewWithStripes(1)
	dog.SetMetrics(met)
	p := m.Proc(0)
	w := m.NewWord(0)

	// No steps, no progress: idle.
	if got := dog.Check(); got != Idle {
		t.Fatalf("quiescent check = %v, want idle", got)
	}

	// Steps with completions: live.
	for i := 0; i < 20; i++ {
		p.RLL(w)
		p.RSC(w, uint64(i))
		prog++
	}
	if got := dog.Check(); got != Live {
		t.Fatalf("productive check = %v, want live", got)
	}

	// Steps without completions, but under the threshold: still live.
	for i := 0; i < 4; i++ {
		p.Load(w)
	}
	if got := dog.Check(); got != Live {
		t.Fatalf("short drought check = %v, want live (under K)", got)
	}

	// Drought crosses K total steps since the last completion: wedged.
	for i := 0; i < 10; i++ {
		p.Load(w)
	}
	if got := dog.Check(); got != Wedged {
		t.Fatalf("long drought check = %v, want wedged", got)
	}

	// A single completion clears the verdict.
	p.RLL(w)
	p.RSC(w, 99)
	prog++
	if got := dog.Check(); got != Live {
		t.Fatalf("post-recovery check = %v, want live", got)
	}

	snap := met.Snapshot()
	if got := snap.Get(obs.CtrWatchdogChecks); got != 5 {
		t.Fatalf("watchdog_checks = %d, want 5", got)
	}
	if got := snap.Get(obs.CtrWatchdogWedged); got != 1 {
		t.Fatalf("watchdog_wedged = %d, want 1", got)
	}
}

func TestWatchdogValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	if _, err := NewWatchdog(nil, func() uint64 { return 0 }, 1); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := NewWatchdog(m, nil, 1); err == nil {
		t.Fatal("nil progress accepted")
	}
	if _, err := NewWatchdog(m, func() uint64 { return 0 }, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestSupervisorMirrorsLeaseEvents(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	reg, err := machine.NewRegistry(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	var prog uint64
	dog, err := NewWatchdog(m, func() uint64 { return prog }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(reg, dog)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewWithStripes(2)
	sup.SetMetrics(met)
	p1 := m.Proc(1)
	w := m.NewWord(0)

	if err := sup.Join(0); err != nil {
		t.Fatal(err)
	}
	if err := sup.Join(1); err != nil {
		t.Fatal(err)
	}
	// Proc 1 works and heartbeats; proc 0 goes silent.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			p1.RLL(w)
			p1.RSC(w, uint64(i*4+j))
			prog++
		}
		if err := sup.Heartbeat(1); err != nil {
			t.Fatal(err)
		}
	}
	res := sup.Poll()
	if res.Verdict != Live {
		t.Fatalf("verdict = %v, want live (proc 1 is committing)", res.Verdict)
	}
	if len(res.Expired) != 1 || res.Expired[0] != 0 {
		t.Fatalf("Expired = %v, want [0] (proc 0 went silent past the TTL)", res.Expired)
	}

	// A lapsed heartbeat is refused (fencing) and the restart is recorded.
	if err := sup.Heartbeat(0); err == nil {
		t.Fatal("heartbeat on an expired lease must be refused")
	}
	m.Proc(0).Crash() // fence the silent incarnation before replacing it
	if _, err := m.Restart(0); err != nil {
		t.Fatal(err)
	}
	sup.NoteRestart(0)
	if err := sup.Join(0); err != nil {
		t.Fatalf("rejoin over expired lease: %v", err)
	}
	if err := sup.Leave(1); err != nil {
		t.Fatal(err)
	}

	snap := met.Snapshot()
	for ctr, want := range map[obs.Counter]uint64{
		obs.CtrLeaseJoins:       3, // two initial joins + one rejoin
		obs.CtrLeaseHeartbeats:  3,
		obs.CtrLeaseExpiries:    2, // the sweep plus the refused heartbeat
		obs.CtrRecoveryRestarts: 1,
	} {
		if got := snap.Get(ctr); got != want {
			t.Fatalf("%s = %d, want %d", ctr, got, want)
		}
	}
}

// TestWedgeProducesExactlyOneFlightDump is the deterministic-schedule
// flight-recorder property: a forced wedge, however many times the
// supervisor polls it, emits exactly one dump for the "wedged" reason.
func TestWedgeProducesExactlyOneFlightDump(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	var prog uint64
	dog, err := NewWatchdog(m, func() uint64 { return prog }, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.MustNew(trace.Config{Procs: 1, EventsPerProc: 64})
	dog.SetTracer(tr)
	fl, err := trace.NewFlight(trace.FlightConfig{Dir: t.TempDir(), Label: "wedge-test", Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	w := m.NewWord(0)

	// Deterministic schedule: one processor burns loads with zero
	// completions until the drought crosses K, then keeps spinning.
	dumps := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 10; i++ {
			p.Load(w)
		}
		if dog.Check() == Wedged {
			if _, wrote, err := fl.Trigger("wedged"); err != nil {
				t.Fatal(err)
			} else if wrote {
				dumps++
			}
		}
	}
	if dumps != 1 {
		t.Fatalf("forced wedge wrote %d dumps, want exactly 1", dumps)
	}
	if got := len(fl.Dumps()); got != 1 {
		t.Fatalf("flight recorder holds %d dumps, want 1", got)
	}

	// The dump's span stream carries the wedge transitions the watchdog
	// recorded — the causal breadcrumb a debugger starts from.
	raw, err := os.ReadFile(fl.Dumps()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"schema": "llsc-flight/v1"`) {
		t.Error("dump missing schema header")
	}
	if !strings.Contains(string(raw), `"kind": "wedge"`) {
		t.Error("dump missing wedge transition event")
	}
}
