// Package recovery is the self-healing supervision layer over the
// simulated machine: a wedge watchdog that distinguishes "making progress"
// from "spinning without committing" from "not running at all", and a
// supervisor that couples the watchdog to the machine's lease registry
// (machine.Registry) and mirrors both into the obs counter taxonomy
// (watchdog_*, lease_*, recovery_restarts).
//
// The paper's non-blocking claim is a statement about executions, not
// states: some process completes an operation within a bounded number of
// total system steps. The watchdog turns that into a runtime check. It
// samples two monotone clocks — the machine's global step counter (every
// shared-memory operation by any processor) and a caller-supplied
// progress counter (completed operations, or successful SCs) — and
// renders a verdict:
//
//   - Live:   progress advanced since the last check. The paper's five
//     figures stay Live under any crash pattern, because a crashed
//     process never blocks the others.
//   - Idle:   neither steps nor progress advanced — nobody is even trying.
//     Quiescence between soak rounds looks like this, not like a wedge.
//   - Wedged: the machine has executed at least K steps since the last
//     progress, yet nothing completed. This is the livelock/blocked
//     signature: survivors burning steps spinning on a lock whose holder
//     crashed (footnote 1's baseline), or an unbounded adversary starving
//     every SC. A Wedged verdict is the trigger for lease expiry and
//     crash-recovery reclamation.
//
// Measuring in machine steps rather than wall-clock time keeps verdicts
// deterministic for deterministic executions and immune to scheduler
// noise: "no commit for K global steps" means the machine provably did K
// operations' worth of work with nothing to show for it.
package recovery

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Verdict is the watchdog's classification of the interval since the
// previous Check.
type Verdict uint8

const (
	// Idle: no machine activity and no progress — nothing to supervise.
	Idle Verdict = iota
	// Live: at least one operation completed since the last check.
	Live
	// Wedged: K or more machine steps elapsed since the last completed
	// operation, with zero completions — livelock or a blocked system.
	Wedged
)

// String returns the verdict's mnemonic.
func (v Verdict) String() string {
	switch v {
	case Idle:
		return "idle"
	case Live:
		return "live"
	case Wedged:
		return "wedged"
	default:
		return "?"
	}
}

// Watchdog renders wedge verdicts for one machine (or any pair of
// monotone clocks). Drive it from a single supervisor goroutine; it is a
// sampler, not a synchronizer.
type Watchdog struct {
	steps    func() uint64
	progress func() uint64
	k        uint64
	mets     *obs.Metrics
	tr       *trace.Tracer

	lastSteps       uint64
	lastProgress    uint64
	stepsAtProgress uint64
}

// NewWatchdog builds a watchdog over m. progress must be a monotone count
// of completed operations (successful SCs, harvested history length, …)
// that the supervised workload advances; k is the wedge threshold in
// machine steps — how many global shared-memory operations the machine may
// execute without a single completion before the system is declared
// wedged. Pick k comfortably above Procs × (the longest operation's step
// count); docs/RECOVERY.md discusses tuning.
func NewWatchdog(m *machine.Machine, progress func() uint64, k uint64) (*Watchdog, error) {
	if m == nil {
		return nil, fmt.Errorf("recovery: machine and progress function are required")
	}
	return NewWatchdogClock(m.Steps, progress, k)
}

// NewWatchdogClock is NewWatchdog for workloads without a simulated
// machine: steps is any monotone clock of *attempted* work (on the native
// substrate, typically operation attempts including retries — the step
// clock there never advances), progress the monotone count of *completed*
// operations. The Wedged verdict keeps its meaning: ≥ k steps of attempted
// work since the last completion, with nothing to show for it. k = 0 is
// rejected at construction — a zero threshold would declare any attempt a
// wedge and divide the liveness argument by zero.
func NewWatchdogClock(steps, progress func() uint64, k uint64) (*Watchdog, error) {
	if steps == nil || progress == nil {
		return nil, fmt.Errorf("recovery: steps and progress functions are required")
	}
	if k < 1 {
		return nil, fmt.Errorf("recovery: wedge threshold must be at least 1 step, got %d", k)
	}
	w := &Watchdog{steps: steps, progress: progress, k: k}
	w.lastSteps = steps()
	w.lastProgress = progress()
	w.stepsAtProgress = w.lastSteps
	return w, nil
}

// SetMetrics attaches an optional metrics sink (nil disables): every Check
// increments watchdog_checks, every Wedged verdict watchdog_wedged.
func (w *Watchdog) SetMetrics(m *obs.Metrics) { w.mets = m }

// SetTracer attaches an optional span tracer (nil disables): every
// Wedged verdict is recorded as a wedge transition event, so a flight
// dump shows exactly where in the operation timeline the watchdog
// tripped.
func (w *Watchdog) SetTracer(t *trace.Tracer) { w.tr = t }

// Threshold returns the wedge threshold K in machine steps.
func (w *Watchdog) Threshold() uint64 { return w.k }

// Check samples the step and progress clocks and renders a verdict for
// the interval since the previous Check (or construction).
func (w *Watchdog) Check() Verdict {
	steps, prog := w.steps(), w.progress()
	w.mets.Inc(obs.CtrWatchdogChecks)
	defer func() { w.lastSteps = steps }()
	if prog != w.lastProgress {
		w.lastProgress = prog
		w.stepsAtProgress = steps
		return Live
	}
	if steps == w.lastSteps {
		return Idle
	}
	if steps-w.stepsAtProgress >= w.k {
		w.mets.Inc(obs.CtrWatchdogWedged)
		w.tr.Transition(trace.Ambient, trace.KindWedge)
		return Wedged
	}
	// Steps are accruing but the drought is still under K: slow, but not
	// yet provably stuck — give the benefit of the doubt.
	return Live
}

// Supervisor couples a lease registry and a watchdog into the single
// object a soak driver polls, and mirrors their event counts into obs
// (machine cannot import obs — obs imports machine — so the mirroring
// lives here).
type Supervisor struct {
	Reg  *machine.Registry
	Dog  *Watchdog
	mets *obs.Metrics
	tr   *trace.Tracer
}

// NewSupervisor builds a supervisor over reg and dog (both required).
func NewSupervisor(reg *machine.Registry, dog *Watchdog) (*Supervisor, error) {
	if reg == nil || dog == nil {
		return nil, fmt.Errorf("recovery: registry and watchdog are required")
	}
	return &Supervisor{Reg: reg, Dog: dog}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// supervisor and its watchdog.
func (s *Supervisor) SetMetrics(m *obs.Metrics) {
	s.mets = m
	s.Dog.SetMetrics(m)
}

// SetTracer attaches an optional span tracer (nil disables) to the
// supervisor's watchdog, and records supervisor-driven restarts
// (NoteRestart) as restart transitions.
func (s *Supervisor) SetTracer(t *trace.Tracer) {
	s.tr = t
	s.Dog.SetTracer(t)
}

// Join grants a lease to processor id (mirrors lease_joins).
func (s *Supervisor) Join(id int) error {
	if err := s.Reg.Join(id); err != nil {
		return err
	}
	s.mets.IncProc(id, obs.CtrLeaseJoins)
	return nil
}

// Heartbeat renews processor id's lease (mirrors lease_heartbeats; a
// refused, lapsed heartbeat mirrors lease_expiries instead and the error
// is the fencing signal — see machine.Registry.Heartbeat).
func (s *Supervisor) Heartbeat(id int) error {
	if err := s.Reg.Heartbeat(id); err != nil {
		if s.Reg.State(id) == machine.LeaseExpired {
			s.mets.IncProc(id, obs.CtrLeaseExpiries)
		}
		return err
	}
	s.mets.IncProc(id, obs.CtrLeaseHeartbeats)
	return nil
}

// Leave releases processor id's lease cleanly.
func (s *Supervisor) Leave(id int) error { return s.Reg.Leave(id) }

// PollResult is one supervision sample.
type PollResult struct {
	// Verdict is the watchdog's view of the interval.
	Verdict Verdict
	// Expired lists processors whose leases this poll newly expired —
	// candidates for Machine.Restart plus construction-level Recover.
	Expired []int
}

// Poll renders a watchdog verdict and sweeps the lease registry, mirroring
// any expiries (lease_expiries). Call it periodically from the supervisor
// goroutine; on Wedged verdicts or non-empty Expired the caller runs the
// restart-and-reclaim path and then NoteRestart.
func (s *Supervisor) Poll() PollResult {
	res := PollResult{Verdict: s.Dog.Check(), Expired: s.Reg.ExpireStale()}
	for _, id := range res.Expired {
		s.mets.IncProc(id, obs.CtrLeaseExpiries)
	}
	return res
}

// NoteRestart records that processor id was restarted (recovery_restarts).
// Call after machine.Restart succeeds.
func (s *Supervisor) NoteRestart(id int) {
	s.mets.IncProc(id, obs.CtrRecoveryRestarts)
	s.tr.Transition(id, trace.KindRestart)
}
