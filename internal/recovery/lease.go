package recovery

import (
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Token is a fencing token: proof that one particular *incarnation* of a
// worker holds (or held) a lease. Every Join mints a fresh token by
// bumping the worker's incarnation number, so a message carrying a stale
// token — a heartbeat from an incarnation that has already been declared
// dead — is refused even if a *newer* incarnation of the same worker is
// alive and well. This closes the race the step-clock machine.Registry
// cannot express: between a supervisor's ExpireStale sweep and the
// worker's replacement Join, a delayed heartbeat from the dead
// incarnation must not resurrect the lease, and after the replacement
// Join it must not renew the *successor's* lease either.
type Token struct {
	// ID is the worker slot the lease covers.
	ID int
	// Incarnation is the Join generation that minted this token,
	// starting at 1.
	Incarnation uint64
}

// String renders the token as "id#incarnation".
func (t Token) String() string { return fmt.Sprintf("%d#%d", t.ID, t.Incarnation) }

// Registry is a fenced lease registry over an arbitrary monotone clock —
// the native-substrate counterpart of machine.Registry, whose leases are
// denominated in simulated machine steps and therefore cannot exist where
// the step clock never advances. A service supervisor supplies the clock
// (typically a global attempt/admission tick counter: any unit that
// provably advances while the rest of the system is making attempts), and
// workers Join before serving, Heartbeat while they run, and Leave when
// done. A worker silent for more than TTL clock units while the clock
// demonstrably advanced is presumed dead; ExpireStale fences it and its
// figure-level state becomes reclaimable.
//
// Unlike machine.Registry, every operation after Join is authenticated by
// the fencing Token, so stale-incarnation traffic is refused by
// construction rather than by timing luck. The registry is a pure
// detector: it never kills or restarts anything itself.
type Registry struct {
	now func() uint64
	ttl uint64

	mu     sync.Mutex
	leases []flease
	mets   *obs.Metrics

	stats machine.RegistryStats
}

type flease struct {
	state       machine.LeaseState
	incarnation uint64
	lastBeat    uint64
}

// NewRegistry builds a fenced registry for worker slots [0, workers) over
// the monotone clock now, with the given lease TTL in clock units. A TTL
// below 1 would expire a lease the instant it was granted and is
// rejected.
func NewRegistry(workers int, now func() uint64, ttl uint64) (*Registry, error) {
	if workers < 1 {
		return nil, fmt.Errorf("recovery: registry needs at least 1 worker slot, got %d", workers)
	}
	if now == nil {
		return nil, fmt.Errorf("recovery: registry clock is required")
	}
	if ttl < 1 {
		return nil, fmt.Errorf("recovery: lease TTL must be at least 1 clock unit, got %d", ttl)
	}
	return &Registry{now: now, ttl: ttl, leases: make([]flease, workers)}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables): joins,
// renewals, and expiries mirror to lease_joins / lease_heartbeats /
// lease_expiries exactly like the machine registry's supervisor path.
func (r *Registry) SetMetrics(m *obs.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mets = m
}

// TTL returns the lease time-to-live in clock units.
func (r *Registry) TTL() uint64 { return r.ttl }

func (r *Registry) check(id int) error {
	if id < 0 || id >= len(r.leases) {
		return fmt.Errorf("recovery: worker id %d out of range [0,%d)", id, len(r.leases))
	}
	return nil
}

// Join grants worker id a fresh lease and mints its fencing token.
// Joining over an expired lease is the reincarnation path and is allowed
// — the incarnation number advances, permanently fencing the dead
// predecessor's token. Joining over a live lease is a double-join
// programming error.
func (r *Registry) Join(id int) (Token, error) {
	if err := r.check(id); err != nil {
		return Token{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := &r.leases[id]
	if l.state == machine.LeaseLive {
		return Token{}, fmt.Errorf("recovery: worker %d already holds a live lease (incarnation %d)", id, l.incarnation)
	}
	l.state = machine.LeaseLive
	l.incarnation++
	l.lastBeat = r.now()
	r.stats.Joins++
	r.mets.IncProc(id, obs.CtrLeaseJoins)
	return Token{ID: id, Incarnation: l.incarnation}, nil
}

// Heartbeat renews the lease named by t. It is REFUSED — and the refusal
// is the fencing signal, telling the caller to abandon in-flight work and
// rejoin through recovery — when any of:
//
//   - the token's incarnation is not the current one (a successor has
//     already joined over this slot; the caller is a ghost);
//   - the lease has been fenced by ExpireStale (or a prior refused
//     heartbeat) and no successor has joined yet;
//   - the heartbeat itself arrives more than TTL clock units after the
//     previous one, in which case the lease is marked expired on the spot.
func (r *Registry) Heartbeat(t Token) error {
	if err := r.check(t.ID); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := &r.leases[t.ID]
	if t.Incarnation != l.incarnation {
		return fmt.Errorf("recovery: worker %d heartbeat carries fenced token %s (current incarnation %d); rejoin required", t.ID, t, l.incarnation)
	}
	if l.state != machine.LeaseLive {
		return fmt.Errorf("recovery: worker %d has no live lease to heartbeat (state %s); rejoin required", t.ID, l.state)
	}
	now := r.now()
	if now-l.lastBeat > r.ttl {
		l.state = machine.LeaseExpired
		r.stats.Expiries++
		r.mets.IncProc(t.ID, obs.CtrLeaseExpiries)
		return fmt.Errorf("recovery: worker %d lease lapsed (%d clock units since last beat, ttl %d); rejoin required", t.ID, now-l.lastBeat, r.ttl)
	}
	l.lastBeat = now
	r.stats.Beats++
	r.mets.IncProc(t.ID, obs.CtrLeaseHeartbeats)
	return nil
}

// Leave releases the lease named by t cleanly (no reclamation needed). A
// fenced token cannot Leave — its lease is no longer its to release.
func (r *Registry) Leave(t Token) error {
	if err := r.check(t.ID); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := &r.leases[t.ID]
	if t.Incarnation != l.incarnation || l.state != machine.LeaseLive {
		return fmt.Errorf("recovery: worker %d cannot leave with token %s (state %s, incarnation %d)", t.ID, t, l.state, l.incarnation)
	}
	l.state = machine.LeaseFree
	r.stats.Leaves++
	return nil
}

// Expire force-fences the lease named by t — for supervisors that KNOW
// the incarnation is dead (its goroutine panicked and was reaped) and
// must not wait out the TTL before reincarnating the slot. A stale token
// cannot expire a successor's lease.
func (r *Registry) Expire(t Token) error {
	if err := r.check(t.ID); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := &r.leases[t.ID]
	if t.Incarnation != l.incarnation {
		return fmt.Errorf("recovery: worker %d cannot be expired with fenced token %s (current incarnation %d)", t.ID, t, l.incarnation)
	}
	if l.state != machine.LeaseLive {
		return nil // already fenced or released; force-expiry is idempotent
	}
	l.state = machine.LeaseExpired
	r.stats.Expiries++
	r.mets.IncProc(t.ID, obs.CtrLeaseExpiries)
	return nil
}

// ExpireStale sweeps the registry, fencing every live lease that has not
// heartbeat for more than TTL clock units, and returns the tokens of the
// incarnations newly declared dead by this sweep. Supervisors call it
// periodically; each returned token identifies exactly which incarnation
// must be reclaimed (and is precisely the token whose future heartbeats
// stay refused).
func (r *Registry) ExpireStale() []Token {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var expired []Token
	for id := range r.leases {
		l := &r.leases[id]
		if l.state == machine.LeaseLive && now-l.lastBeat > r.ttl {
			l.state = machine.LeaseExpired
			r.stats.Expiries++
			r.mets.IncProc(id, obs.CtrLeaseExpiries)
			expired = append(expired, Token{ID: id, Incarnation: l.incarnation})
		}
	}
	return expired
}

// State returns worker id's current lease state (LeaseFree for an
// out-of-range id, which cannot hold a lease).
func (r *Registry) State(id int) machine.LeaseState {
	if r.check(id) != nil {
		return machine.LeaseFree
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leases[id].state
}

// Incarnation returns worker id's current incarnation number (0 if it has
// never joined, or the id is out of range).
func (r *Registry) Incarnation(id int) uint64 {
	if r.check(id) != nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leases[id].incarnation
}

// Live returns the number of live leases.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, l := range r.leases {
		if l.state == machine.LeaseLive {
			n++
		}
	}
	return n
}

// Stats returns the registry's event counters (the same shape as
// machine.RegistryStats, so reports can treat either registry uniformly).
func (r *Registry) Stats() machine.RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
