package recovery

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// fakeClock is a hand-advanced monotone clock for deterministic lease
// tests — no timers, no sleeps.
type fakeClock struct{ t uint64 }

func (c *fakeClock) now() uint64      { return c.t }
func (c *fakeClock) advance(d uint64) { c.t += d }

func newTestRegistry(t *testing.T, workers int, ttl uint64) (*Registry, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	r, err := NewRegistry(workers, clk.now, ttl)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return r, clk
}

func TestRegistryConstructorValidation(t *testing.T) {
	clk := &fakeClock{}
	if _, err := NewRegistry(0, clk.now, 10); err == nil {
		t.Error("NewRegistry accepted 0 workers")
	}
	if _, err := NewRegistry(1, nil, 10); err == nil {
		t.Error("NewRegistry accepted nil clock")
	}
	if _, err := NewRegistry(1, clk.now, 0); err == nil {
		t.Error("NewRegistry accepted TTL 0")
	}
}

// TestLeaseFencingStaleHeartbeatRefusedAcrossRejoin is the race the soak
// never hits: a heartbeat from a fenced incarnation must stay refused not
// just immediately after ExpireStale, but also after the slot's NEXT Join
// — the stale token must never renew the successor's lease.
func TestLeaseFencingStaleHeartbeatRefusedAcrossRejoin(t *testing.T) {
	r, clk := newTestRegistry(t, 2, 10)

	t1, err := r.Join(0)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if t1.Incarnation != 1 {
		t.Fatalf("first incarnation = %d, want 1", t1.Incarnation)
	}

	// Worker goes silent past the TTL; the supervisor sweep fences it.
	clk.advance(11)
	expired := r.ExpireStale()
	if len(expired) != 1 || expired[0] != t1 {
		t.Fatalf("ExpireStale = %v, want [%v]", expired, t1)
	}
	if got := r.State(0); got != machine.LeaseExpired {
		t.Fatalf("state after expiry = %v, want expired", got)
	}

	// The delayed heartbeat from the dead incarnation arrives: refused.
	if err := r.Heartbeat(t1); err == nil {
		t.Fatal("heartbeat after ExpireStale was accepted; want refusal")
	}

	// The slot reincarnates.
	t2, err := r.Join(0)
	if err != nil {
		t.Fatalf("rejoin over expired lease: %v", err)
	}
	if t2.Incarnation != 2 {
		t.Fatalf("rejoin incarnation = %d, want 2", t2.Incarnation)
	}

	// The stale token must STILL be refused — now because it is fenced by
	// incarnation, not because the lease is expired (it is live again).
	err = r.Heartbeat(t1)
	if err == nil {
		t.Fatal("stale-incarnation heartbeat accepted after rejoin; fencing is broken")
	}
	if !strings.Contains(err.Error(), "fenced") {
		t.Errorf("stale heartbeat error %q does not mention fencing", err)
	}
	if got := r.State(0); got != machine.LeaseLive {
		t.Errorf("successor lease state = %v after stale heartbeat, want live", got)
	}

	// ... and the successor's own heartbeats work fine.
	if err := r.Heartbeat(t2); err != nil {
		t.Errorf("successor heartbeat refused: %v", err)
	}

	// The stale token cannot Leave on the successor's behalf either.
	if err := r.Leave(t1); err == nil {
		t.Error("stale token Leave accepted; want refusal")
	}
	if err := r.Leave(t2); err != nil {
		t.Errorf("successor Leave refused: %v", err)
	}
}

// TestLeaseLapsedHeartbeatMarksExpired: a heartbeat arriving after more
// than TTL clock units of silence is itself the expiry signal — refused,
// with the lease marked expired on the spot rather than waiting for the
// next supervisor sweep.
func TestLeaseLapsedHeartbeatMarksExpired(t *testing.T) {
	r, clk := newTestRegistry(t, 1, 5)
	tok, err := r.Join(0)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	clk.advance(5)
	if err := r.Heartbeat(tok); err != nil {
		t.Fatalf("heartbeat exactly at TTL refused: %v", err)
	}
	clk.advance(6)
	if err := r.Heartbeat(tok); err == nil {
		t.Fatal("heartbeat past TTL accepted")
	}
	if got := r.State(0); got != machine.LeaseExpired {
		t.Errorf("state after lapsed heartbeat = %v, want expired", got)
	}
	// The sweep must not report it a second time.
	if expired := r.ExpireStale(); len(expired) != 0 {
		t.Errorf("ExpireStale re-reported already-expired lease: %v", expired)
	}
}

func TestRegistryDoubleJoinAndOutOfRange(t *testing.T) {
	r, _ := newTestRegistry(t, 1, 10)
	if _, err := r.Join(0); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := r.Join(0); err == nil {
		t.Error("double Join over a live lease accepted")
	}
	if _, err := r.Join(1); err == nil {
		t.Error("Join out of range accepted")
	}
	if err := r.Heartbeat(Token{ID: -1, Incarnation: 1}); err == nil {
		t.Error("Heartbeat out of range accepted")
	}
	if r.Live() != 1 {
		t.Errorf("Live = %d, want 1", r.Live())
	}
}

func TestRegistryStatsAndIncarnation(t *testing.T) {
	r, clk := newTestRegistry(t, 1, 3)
	tok, _ := r.Join(0)
	_ = r.Heartbeat(tok)
	clk.advance(4)
	_ = r.ExpireStale()
	tok2, _ := r.Join(0)
	_ = r.Leave(tok2)

	s := r.Stats()
	want := machine.RegistryStats{Joins: 2, Leaves: 1, Beats: 1, Expiries: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
	if got := r.Incarnation(0); got != 2 {
		t.Errorf("Incarnation = %d, want 2", got)
	}
}

// TestWatchdogZeroThresholdRejected: K=0 would declare the very first
// attempted step a wedge — the construction must refuse it instead of
// degenerating.
func TestWatchdogZeroThresholdRejected(t *testing.T) {
	var n uint64
	clock := func() uint64 { return n }
	if _, err := NewWatchdogClock(clock, clock, 0); err == nil {
		t.Fatal("NewWatchdogClock accepted k=0")
	}
	m, err := machine.New(machine.Config{Procs: 1})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	if _, err := NewWatchdog(m, clock, 0); err == nil {
		t.Fatal("NewWatchdog accepted k=0")
	}
	if _, err := NewWatchdogClock(nil, clock, 1); err == nil {
		t.Fatal("NewWatchdogClock accepted nil steps clock")
	}
	if _, err := NewWatchdogClock(clock, nil, 1); err == nil {
		t.Fatal("NewWatchdogClock accepted nil progress clock")
	}
}

// TestWatchdogClockVerdicts drives the generalized watchdog through all
// three verdicts on hand-rolled clocks (no simulated machine).
func TestWatchdogClockVerdicts(t *testing.T) {
	var steps, prog uint64
	w, err := NewWatchdogClock(func() uint64 { return steps }, func() uint64 { return prog }, 10)
	if err != nil {
		t.Fatalf("NewWatchdogClock: %v", err)
	}
	if got := w.Check(); got != Idle {
		t.Errorf("no activity: verdict = %v, want idle", got)
	}
	steps, prog = 5, 1
	if got := w.Check(); got != Live {
		t.Errorf("progress advanced: verdict = %v, want live", got)
	}
	steps = 9 // 4 steps of drought — under k
	if got := w.Check(); got != Live {
		t.Errorf("drought under threshold: verdict = %v, want live", got)
	}
	steps = 15 // 10 steps since last progress — at k
	if got := w.Check(); got != Wedged {
		t.Errorf("drought at threshold: verdict = %v, want wedged", got)
	}
	prog = 2
	steps = 16
	if got := w.Check(); got != Live {
		t.Errorf("recovered: verdict = %v, want live", got)
	}
}
