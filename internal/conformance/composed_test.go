package conformance

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/machine"
)

// composed adapts baseline.Composed (Figure 4 layered over Figure 3).
type composed struct {
	m     *machine.Machine
	v     *baseline.Composed
	keeps []baseline.ComposedKeep
}

func newComposed(spurious float64) factory {
	return func(n int, initial uint64) register {
		m := machine.MustNew(machine.Config{Procs: n, SpuriousFailProb: spurious, Seed: 61})
		v, err := baseline.NewComposed(m, 24, 24, initial)
		if err != nil {
			panic(err)
		}
		return &composed{m: m, v: v, keeps: make([]baseline.ComposedKeep, n)}
	}
}

func (a *composed) Read(proc int) uint64                 { return a.v.Read(a.m.Proc(proc)) }
func (a *composed) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *composed) LL(proc int) (uint64, bool) {
	v, k := a.v.LL(a.m.Proc(proc))
	a.keeps[proc] = k
	return v, true
}
func (a *composed) VL(proc int) bool { return a.v.VL(a.m.Proc(proc), a.keeps[proc]) }
func (a *composed) SC(proc int, v uint64) bool {
	return a.v.SC(a.m.Proc(proc), a.keeps[proc], v)
}

func TestLinearizabilityComposed(t *testing.T) {
	runStress(t, "baseline.Composed", newComposed(0.2))
}
