package conformance

import (
	"testing"

	"repro/internal/machine"
)

// This file is the substrate dimension of the conformance matrix: every
// machine-backed register implementation (Figures 3 and 5, and the
// Figure 6/7 realizations over RLL/RSC) runs the identical stress suite
// on both the simulated multiprocessor and the native sync/atomic
// substrate. The sim cells keep their spurious-failure injection and
// windowed exact checking; the native cells necessarily run ideal
// (hardware CAS has no spurious failures — New rejects the probability)
// and exercise real hardware schedules, which the CI race job replays
// under -race.
//
// The Figure 4 register and the containers built on it (counter, set,
// map, pool, stack, queue, deque, ring, snapshot) are hardwired to raw
// sync/atomic — they ARE the native path and have no sim cell; their
// serialized-exhaustive suites play the sim role for them. The
// machine-backed container is structures.MachineCounter, whose
// substrate-differential suites live in internal/structures.

// substrateConfig builds the machine configuration for one matrix cell.
// Simulation-only features are set only for the sim cell; the native
// substrate would reject them.
func substrateConfig(sub machine.Substrate, n int, spurious float64, seed int64) machine.Config {
	cfg := machine.Config{Procs: n, Substrate: sub, Seed: seed}
	if sub == machine.SubstrateSim {
		cfg.SpuriousFailProb = spurious
	}
	return cfg
}

// runStressMatrix runs the stress suite once per substrate as subtests.
// mk builds the register factory for one cell; the sim cell gets the
// given spurious rate, the native cell always 0.
func runStressMatrix(t *testing.T, name string, spurious float64, mk func(machine.Substrate, float64) factory) {
	t.Helper()
	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		sp := spurious
		if sub == machine.SubstrateNative {
			sp = 0
		}
		t.Run(sub.String(), func(t *testing.T) {
			runStress(t, name+"/"+sub.String(), mk(sub, sp))
		})
	}
}
