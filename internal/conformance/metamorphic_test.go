package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

// Metamorphic cross-substrate tests: the same single-threaded operation
// sequence, generated from the same seed, replayed on the simulated and
// the native substrate, must agree on every operation result, on the
// final value, and on the deltas of the schedule-independent obs
// counters (operation counts and SC/CAS outcomes). Single-threaded and
// spurious-free, both substrates execute the figure code down the
// identical path, so any divergence is a substrate bug — this is the
// behavioral-identity check that lets the native numbers in
// BENCH_native.json stand for the same algorithms the simulation
// verifies.
//
// Schedule-dependent counters (retries, backoff waits, copy fixes from
// helping) are excluded on principle even though they too are
// deterministic here: the invariant being pinned is "same ops in, same
// ops out", not "same contention".

// metaFigure drives one figure's op sequence: given a machine and a
// metrics sink, apply ops pseudo-random operations (from rng) through
// processor 0, returning each op's value/bool results and the final
// value.
type metaFigure struct {
	name     string
	counters []obs.Counter
	run      func(t *testing.T, m *machine.Machine, met *obs.Metrics, rng *rand.Rand, ops int) (vals []uint64, oks []bool, final uint64)
}

var metaFigures = []metaFigure{
	{
		name:     "figure3-casvar",
		counters: []obs.Counter{obs.CtrRead, obs.CtrCASAttempt},
		run: func(t *testing.T, m *machine.Machine, met *obs.Metrics, rng *rand.Rand, ops int) ([]uint64, []bool, uint64) {
			v, err := core.NewCASVar(m, word.DefaultLayout, 1)
			if err != nil {
				t.Fatal(err)
			}
			v.SetMetrics(met)
			p := m.Proc(0)
			var vals []uint64
			var oks []bool
			for i := 0; i < ops; i++ {
				if rng.Intn(3) == 0 {
					vals = append(vals, v.Read(p))
				} else {
					oks = append(oks, v.CompareAndSwap(p, uint64(rng.Intn(4)), uint64(rng.Intn(4))))
				}
			}
			return vals, oks, v.Read(p)
		},
	},
	{
		name:     "figure5-rvar",
		counters: []obs.Counter{obs.CtrRead, obs.CtrLL, obs.CtrVL, obs.CtrSC, obs.CtrSCFailInterference},
		run: func(t *testing.T, m *machine.Machine, met *obs.Metrics, rng *rand.Rand, ops int) ([]uint64, []bool, uint64) {
			v, err := core.NewRVar(m, word.DefaultLayout, 1)
			if err != nil {
				t.Fatal(err)
			}
			v.SetMetrics(met)
			p := m.Proc(0)
			var vals []uint64
			var oks []bool
			for i := 0; i < ops; i++ {
				if rng.Intn(3) == 0 {
					vals = append(vals, v.Read(p))
					continue
				}
				val, keep := v.LL(p)
				vals = append(vals, val)
				if rng.Intn(2) == 0 {
					oks = append(oks, v.VL(p, keep))
				}
				oks = append(oks, v.SC(p, keep, uint64(rng.Intn(4))))
			}
			return vals, oks, v.Read(p)
		},
	},
	{
		name:     "figure6-rlarge",
		counters: []obs.Counter{obs.CtrRead, obs.CtrLL, obs.CtrVL, obs.CtrSC, obs.CtrSCFailInterference},
		run: func(t *testing.T, m *machine.Machine, met *obs.Metrics, rng *rand.Rand, ops int) ([]uint64, []bool, uint64) {
			f, err := core.NewRLargeFamily(m, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.SetMetrics(met)
			v, err := f.NewVar([]uint64{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			p := m.Proc(0)
			buf := make([]uint64, 2)
			var vals []uint64
			var oks []bool
			for i := 0; i < ops; i++ {
				if rng.Intn(3) == 0 {
					v.Read(p, buf)
					vals = append(vals, buf[0], buf[1])
					continue
				}
				keep, res := v.WLL(p, buf)
				oks = append(oks, res == core.Succ)
				if res != core.Succ {
					continue
				}
				vals = append(vals, buf[0], buf[1])
				oks = append(oks, v.SC(p, keep, []uint64{uint64(rng.Intn(4)), uint64(rng.Intn(4))}))
			}
			v.Read(p, buf)
			return vals, oks, buf[0]<<8 | buf[1]
		},
	},
	{
		name:     "figure7-rbounded",
		counters: []obs.Counter{obs.CtrRead, obs.CtrLL, obs.CtrVL, obs.CtrSC, obs.CtrSCFailInterference},
		run: func(t *testing.T, m *machine.Machine, met *obs.Metrics, rng *rand.Rand, ops int) ([]uint64, []bool, uint64) {
			f, err := core.NewRBoundedFamily(m, 2)
			if err != nil {
				t.Fatal(err)
			}
			f.SetMetrics(met)
			v, err := f.NewVar(1)
			if err != nil {
				t.Fatal(err)
			}
			bp, err := f.Proc(0)
			if err != nil {
				t.Fatal(err)
			}
			var vals []uint64
			var oks []bool
			for i := 0; i < ops; i++ {
				if rng.Intn(3) == 0 {
					vals = append(vals, v.Read(bp))
					continue
				}
				val, keep, err := v.LL(bp)
				if err != nil {
					t.Fatal(err)
				}
				vals = append(vals, val)
				if rng.Intn(2) == 0 {
					oks = append(oks, v.VL(bp, keep))
				}
				oks = append(oks, v.SC(bp, keep, uint64(rng.Intn(4))))
			}
			return vals, oks, v.Read(bp)
		},
	},
}

func TestMetamorphicCrossSubstrate(t *testing.T) {
	const ops = 300
	for _, fig := range metaFigures {
		t.Run(fig.name, func(t *testing.T) {
			type outcome struct {
				vals  []uint64
				oks   []bool
				final uint64
				snap  obs.Snapshot
			}
			run := func(sub machine.Substrate) outcome {
				m := machine.MustNew(machine.Config{Procs: 1, Substrate: sub, Seed: 5})
				met := obs.New()
				// Same seed for both substrates: the op sequence is a pure
				// function of the rng, so the runs are replicas.
				vals, oks, final := fig.run(t, m, met, rand.New(rand.NewSource(271)), ops)
				return outcome{vals: vals, oks: oks, final: final, snap: met.Snapshot()}
			}
			sim := run(machine.SubstrateSim)
			nat := run(machine.SubstrateNative)

			if sim.final != nat.final {
				t.Errorf("final value diverged: sim %d, native %d", sim.final, nat.final)
			}
			if len(sim.vals) != len(nat.vals) {
				t.Fatalf("value-result counts diverged: sim %d, native %d", len(sim.vals), len(nat.vals))
			}
			for i := range sim.vals {
				if sim.vals[i] != nat.vals[i] {
					t.Errorf("value result %d diverged: sim %d, native %d", i, sim.vals[i], nat.vals[i])
				}
			}
			if len(sim.oks) != len(nat.oks) {
				t.Fatalf("bool-result counts diverged: sim %d, native %d", len(sim.oks), len(nat.oks))
			}
			for i := range sim.oks {
				if sim.oks[i] != nat.oks[i] {
					t.Errorf("bool result %d diverged: sim %v, native %v", i, sim.oks[i], nat.oks[i])
				}
			}
			for _, c := range fig.counters {
				if s, n := sim.snap.Get(c), nat.snap.Get(c); s != n {
					t.Errorf("counter %v delta diverged: sim %d, native %d", c, s, n)
				}
			}
		})
	}
}
