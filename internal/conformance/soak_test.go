package conformance

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/structures"
	"repro/internal/word"
)

// Soak tests: heavyweight randomized validation, skipped unless
// LLSC_SOAK=1 (run them with `make soak`). They repeat the regular
// invariants at 100×+ the volume and with larger process counts.

func soakEnabled(t *testing.T) {
	t.Helper()
	if os.Getenv("LLSC_SOAK") == "" {
		t.Skip("soak test; set LLSC_SOAK=1 to run")
	}
}

func TestSoakLinearizabilityBattery(t *testing.T) {
	soakEnabled(t)
	impls := map[string]factory{
		"fig3":            newFigure3(machine.SubstrateSim, 0.2),
		"fig4":            newFigure4,
		"fig5":            newFigure5(machine.SubstrateSim, 0.2),
		"fig6":            newFigure6,
		"fig7":            newFigure7,
		"rlarge":          newRLarge(machine.SubstrateSim, 0.2),
		"rbounded":        newRBounded(machine.SubstrateSim, 0.2),
		"fig3-native":     newFigure3(machine.SubstrateNative, 0),
		"fig5-native":     newFigure5(machine.SubstrateNative, 0),
		"rlarge-native":   newRLarge(machine.SubstrateNative, 0),
		"rbounded-native": newRBounded(machine.SubstrateNative, 0),
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 30; round++ { // 30 × the whole battery
				runStress(t, name, mk)
			}
		})
	}
}

func TestSoakCounterMarathon(t *testing.T) {
	soakEnabled(t)
	const procs = 16
	const rounds = 200_000
	v := core.MustNewVar(word.MustLayout(32), 0)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := v.Read(); got != procs*rounds {
		t.Fatalf("counter = %d, want %d", got, procs*rounds)
	}
}

func TestSoakStructureChurn(t *testing.T) {
	soakEnabled(t)
	const workers = 8
	const opsEach = 500_000
	s, err := structures.NewStack(1024)
	if err != nil {
		t.Fatal(err)
	}
	q, err := structures.NewQueue(1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := structures.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				v := uint64(rng.Intn(1 << 20))
				switch rng.Intn(6) {
				case 0:
					s.Push(v)
				case 1:
					s.Pop()
				case 2:
					q.Enqueue(v)
				case 3:
					q.Dequeue()
				case 4:
					r.Enqueue(v)
				default:
					r.Dequeue()
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain everything; the structures must still be structurally sound.
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
	}
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	for {
		if _, ok := r.Dequeue(); !ok {
			break
		}
	}
	if !s.Empty() || !q.Empty() || !r.Empty() {
		t.Fatal("structures not empty after draining")
	}
}

func TestSoakSTMBankMarathon(t *testing.T) {
	soakEnabled(t)
	const accounts = 32
	const workers = 8
	const transfers = 100_000
	m := stm.MustNew(accounts)
	for a := 0; a < accounts; a++ {
		if err := m.Write(a, 1000); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				_, err := m.Atomically([]int{from, to}, func(cur, next []uint64) {
					next[0], next[1] = cur[0], cur[1]
					if cur[0] > 0 {
						next[0]--
						next[1]++
					}
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for a := 0; a < accounts; a++ {
		v, _ := m.Read(a)
		total += v
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
	st := m.Stats()
	t.Logf("STM marathon: %d commits, %d mismatches, %d aborts, %d helps",
		st.Commits, st.Mismatches, st.ForcedAborts, st.Helps)
}
