package conformance

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/word"
)

// register is the uniform adapter the stress driver exercises. An
// implementation exposes whichever operations it supports; unsupported
// operations report ok=false and are skipped by the driver.
//
// Implementations are per-history (a fresh instance each round) and the
// adapter owns any per-process handles and keep tokens. Each process
// (driver goroutine) uses only its own proc id, so per-process state in
// adapters needs no locking.
type register interface {
	// Read returns the current value.
	Read(proc int) uint64
	// CAS attempts a compare-and-swap; ok=false means unsupported.
	CAS(proc int, old, new uint64) (res bool, ok bool)
	// LL begins an LL-SC sequence; ok=false means unsupported.
	LL(proc int) (val uint64, ok bool)
	// VL validates the sequence begun by the last LL of proc.
	VL(proc int) bool
	// SC finishes the sequence begun by the last LL of proc.
	SC(proc int, v uint64) bool
}

// factory builds a fresh register holding initial for n processes.
type factory func(n int, initial uint64) register

const (
	stressProcs   = 3
	stressOpsCap  = 6 // ops per process per history (LL+VL+SC counts as 3)
	stressRounds  = 120
	stressValues  = 4 // small value domain to force collisions
	stressInitial = 1
)

// runStress drives nRounds random histories against fresh registers and
// checks each for linearizability.
func runStress(t *testing.T, name string, mk factory) {
	t.Helper()
	for round := 0; round < stressRounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)*7919 + 17))
		reg := mk(stressProcs, stressInitial)
		rec := history.NewRecorder(stressProcs)

		var wg sync.WaitGroup
		for p := 0; p < stressProcs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				budget := stressOpsCap
				for budget > 0 {
					switch r.Intn(4) {
					case 0: // Read
						call := rec.Now()
						v := reg.Read(p)
						ret := rec.Now()
						rec.Record(p, history.Op{Proc: p, Kind: history.KindRead, RetVal: v, Call: call, Return: ret})
						budget--
					case 1: // CAS
						old := uint64(r.Intn(stressValues))
						new := uint64(r.Intn(stressValues))
						call := rec.Now()
						res, ok := reg.CAS(p, old, new)
						ret := rec.Now()
						if !ok {
							continue // unsupported; nothing recorded
						}
						rec.Record(p, history.Op{Proc: p, Kind: history.KindCAS, Arg1: old, Arg2: new, RetBool: res, Call: call, Return: ret})
						budget--
					default: // LL [VL] SC
						call := rec.Now()
						v, ok := reg.LL(p)
						ret := rec.Now()
						if !ok {
							// LL unsupported: fall back to a read so CAS-only
							// registers still see traffic.
							continue
						}
						rec.Record(p, history.Op{Proc: p, Kind: history.KindLL, RetVal: v, Call: call, Return: ret})
						budget--
						if budget > 0 && r.Intn(2) == 0 {
							call = rec.Now()
							res := reg.VL(p)
							ret = rec.Now()
							rec.Record(p, history.Op{Proc: p, Kind: history.KindVL, RetBool: res, Call: call, Return: ret})
							budget--
						}
						if budget > 0 {
							nv := uint64(r.Intn(stressValues))
							call = rec.Now()
							res := reg.SC(p, nv)
							ret = rec.Now()
							rec.Record(p, history.Op{Proc: p, Kind: history.KindSC, Arg1: nv, RetBool: res, Call: call, Return: ret})
							budget--
						}
					}
				}
			}(p, rng.Int63())
		}
		wg.Wait()

		ops := rec.Ops()
		res, err := linearizability.Check(ops, linearizability.State{Val: stressInitial})
		if err != nil {
			t.Fatalf("%s round %d: checker error: %v", name, round, err)
		}
		if !res.Ok {
			var sb strings.Builder
			for _, o := range ops {
				fmt.Fprintf(&sb, "  %v\n", o)
			}
			t.Fatalf("%s round %d: history NOT linearizable:\n%s", name, round, sb.String())
		}
	}
}

// --- adapters ---------------------------------------------------------

// figure4 adapts core.Var (LL/VL/SC from CAS on real atomics).
type figure4 struct {
	v     *core.Var
	keeps []core.Keep
}

func newFigure4(n int, initial uint64) register {
	return &figure4{v: core.MustNewVar(word.DefaultLayout, initial), keeps: make([]core.Keep, n)}
}
func (a *figure4) Read(proc int) uint64 { return a.v.Read() }
func (a *figure4) CAS(proc int, old, new uint64) (bool, bool) {
	return a.v.CompareAndSwap(old, new), true
}
func (a *figure4) LL(proc int) (uint64, bool) {
	v, k := a.v.LL()
	a.keeps[proc] = k
	return v, true
}
func (a *figure4) VL(proc int) bool           { return a.v.VL(a.keeps[proc]) }
func (a *figure4) SC(proc int, v uint64) bool { return a.v.SC(a.keeps[proc], v) }

// figure3 adapts core.CASVar (CAS from RLL/RSC on the simulated machine).
type figure3 struct {
	m *machine.Machine
	v *core.CASVar
}

func newFigure3(sub machine.Substrate, spurious float64) factory {
	return func(n int, initial uint64) register {
		m := machine.MustNew(substrateConfig(sub, n, spurious, 99))
		v, err := core.NewCASVar(m, word.DefaultLayout, initial)
		if err != nil {
			panic(err)
		}
		return &figure3{m: m, v: v}
	}
}
func (a *figure3) Read(proc int) uint64 { return a.v.Read(a.m.Proc(proc)) }
func (a *figure3) CAS(proc int, old, new uint64) (bool, bool) {
	return a.v.CompareAndSwap(a.m.Proc(proc), old, new), true
}
func (a *figure3) LL(proc int) (uint64, bool) { return 0, false }
func (a *figure3) VL(proc int) bool           { return false }
func (a *figure3) SC(proc int, v uint64) bool { return false }

// figure5 adapts core.RVar (LL/VL/SC direct from RLL/RSC).
type figure5 struct {
	m     *machine.Machine
	v     *core.RVar
	keeps []core.Keep
}

func newFigure5(sub machine.Substrate, spurious float64) factory {
	return func(n int, initial uint64) register {
		m := machine.MustNew(substrateConfig(sub, n, spurious, 7))
		v, err := core.NewRVar(m, word.DefaultLayout, initial)
		if err != nil {
			panic(err)
		}
		return &figure5{m: m, v: v, keeps: make([]core.Keep, n)}
	}
}
func (a *figure5) Read(proc int) uint64                       { return a.v.Read(a.m.Proc(proc)) }
func (a *figure5) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *figure5) LL(proc int) (uint64, bool) {
	v, k := a.v.LL(a.m.Proc(proc))
	a.keeps[proc] = k
	return v, true
}
func (a *figure5) VL(proc int) bool { return a.v.VL(a.m.Proc(proc), a.keeps[proc]) }
func (a *figure5) SC(proc int, v uint64) bool {
	return a.v.SC(a.m.Proc(proc), a.keeps[proc], v)
}

// figure6 adapts core.LargeVar with W=1 as a register; its WLL retry loop
// realizes a lock-free LL.
type figure6 struct {
	f     *core.LargeFamily
	v     *core.LargeVar
	keeps []core.LKeep
	bufs  [][]uint64
}

func newFigure6(n int, initial uint64) register {
	f := core.MustNewLargeFamily(core.LargeConfig{Procs: n, Words: 1})
	v, err := f.NewVar([]uint64{initial})
	if err != nil {
		panic(err)
	}
	a := &figure6{f: f, v: v, keeps: make([]core.LKeep, n), bufs: make([][]uint64, n)}
	for i := range a.bufs {
		a.bufs[i] = make([]uint64, 1)
	}
	return a
}
func (a *figure6) proc(p int) *core.LargeProc {
	pr, err := a.f.Proc(p)
	if err != nil {
		panic(err)
	}
	return pr
}
func (a *figure6) Read(proc int) uint64 {
	a.v.Read(a.proc(proc), a.bufs[proc])
	return a.bufs[proc][0]
}
func (a *figure6) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *figure6) LL(proc int) (uint64, bool) {
	p := a.proc(proc)
	for {
		keep, res := a.v.WLL(p, a.bufs[proc])
		if res == core.Succ {
			a.keeps[proc] = keep
			return a.bufs[proc][0], true
		}
	}
}
func (a *figure6) VL(proc int) bool { return a.v.VL(a.proc(proc), a.keeps[proc]) }
func (a *figure6) SC(proc int, v uint64) bool {
	return a.v.SC(a.proc(proc), a.keeps[proc], []uint64{v})
}

// figure7 adapts core.BoundedVar.
type figure7 struct {
	f     *core.BoundedFamily
	v     *core.BoundedVar
	keeps []core.BKeep
}

func newFigure7(n int, initial uint64) register {
	f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: n, K: 2})
	v, err := f.NewVar(initial)
	if err != nil {
		panic(err)
	}
	return &figure7{f: f, v: v, keeps: make([]core.BKeep, n)}
}
func (a *figure7) proc(p int) *core.BoundedProc {
	pr, err := a.f.Proc(p)
	if err != nil {
		panic(err)
	}
	return pr
}
func (a *figure7) Read(proc int) uint64                       { return a.v.Read() }
func (a *figure7) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *figure7) LL(proc int) (uint64, bool) {
	v, k, err := a.v.LL(a.proc(proc))
	if err != nil {
		panic(err) // driver keeps ≤1 outstanding sequence < k=2
	}
	a.keeps[proc] = k
	return v, true
}
func (a *figure7) VL(proc int) bool { return a.v.VL(a.proc(proc), a.keeps[proc]) }
func (a *figure7) SC(proc int, v uint64) bool {
	return a.v.SC(a.proc(proc), a.keeps[proc], v)
}

// mutexAdapter adapts baseline.MutexLLSC.
type mutexAdapter struct{ v *baseline.MutexLLSC }

func newMutexAdapter(n int, initial uint64) register {
	v, err := baseline.NewMutexLLSC(n, initial)
	if err != nil {
		panic(err)
	}
	return &mutexAdapter{v: v}
}
func (a *mutexAdapter) Read(proc int) uint64                       { return a.v.Read() }
func (a *mutexAdapter) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *mutexAdapter) LL(proc int) (uint64, bool)                 { return a.v.LL(proc), true }
func (a *mutexAdapter) VL(proc int) bool                           { return a.v.VL(proc) }
func (a *mutexAdapter) SC(proc int, v uint64) bool                 { return a.v.SC(proc, v) }

// irAdapter adapts baseline.IsraeliRappoport.
type irAdapter struct{ v *baseline.IsraeliRappoport }

func newIRAdapter(n int, initial uint64) register {
	v, err := baseline.NewIsraeliRappoport(n, initial)
	if err != nil {
		panic(err)
	}
	return &irAdapter{v: v}
}
func (a *irAdapter) Read(proc int) uint64                       { return a.v.Read() }
func (a *irAdapter) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *irAdapter) LL(proc int) (uint64, bool) {
	v, _ := a.v.LL(proc)
	return v, true
}
func (a *irAdapter) VL(proc int) bool           { return a.v.VL(proc) }
func (a *irAdapter) SC(proc int, v uint64) bool { return a.v.SC(proc, v) }

// perVarAdapter adapts baseline.PerVarBoundedVar.
type perVarAdapter struct {
	v     *baseline.PerVarBoundedVar
	keeps []core.BKeep
}

func newPerVarAdapter(n int, initial uint64) register {
	b, err := baseline.NewPerVarBounded(n)
	if err != nil {
		panic(err)
	}
	v, err := b.NewVar(initial)
	if err != nil {
		panic(err)
	}
	return &perVarAdapter{v: v, keeps: make([]core.BKeep, n)}
}
func (a *perVarAdapter) Read(proc int) uint64                       { return a.v.Read() }
func (a *perVarAdapter) CAS(proc int, old, new uint64) (bool, bool) { return false, false }
func (a *perVarAdapter) LL(proc int) (uint64, bool) {
	v, k, err := a.v.LL(proc)
	if err != nil {
		panic(err)
	}
	a.keeps[proc] = k
	return v, true
}
func (a *perVarAdapter) VL(proc int) bool           { return a.v.VL(proc, a.keeps[proc]) }
func (a *perVarAdapter) SC(proc int, v uint64) bool { return a.v.SC(proc, a.keeps[proc], v) }

// specAdapter adapts the Figure 2 oracle itself — the checker must accept
// its histories (a self-test of the whole pipeline).
type specAdapter struct{ v *spec.Register }

func newSpecAdapter(n int, initial uint64) register {
	return &specAdapter{v: spec.MustNewRegister(n, initial)}
}
func (a *specAdapter) Read(proc int) uint64                       { return a.v.Read() }
func (a *specAdapter) CAS(proc int, old, new uint64) (bool, bool) { return a.v.CAS(old, new), true }
func (a *specAdapter) LL(proc int) (uint64, bool)                 { return a.v.LL(proc), true }
func (a *specAdapter) VL(proc int) bool                           { return a.v.VL(proc) }
func (a *specAdapter) SC(proc int, v uint64) bool                 { return a.v.SC(proc, v) }

// --- the tests --------------------------------------------------------

func TestLinearizabilityFigure2Oracle(t *testing.T) {
	runStress(t, "spec.Register", newSpecAdapter)
}

func TestLinearizabilityFigure3CASFromRLLRSC(t *testing.T) {
	runStressMatrix(t, "core.CASVar", 0.2, newFigure3)
}

func TestLinearizabilityFigure3NoSpurious(t *testing.T) {
	runStressMatrix(t, "core.CASVar/ideal", 0, newFigure3)
}

func TestLinearizabilityFigure4LLSCFromCAS(t *testing.T) {
	runStress(t, "core.Var", newFigure4)
}

func TestLinearizabilityFigure5LLSCFromRLLRSC(t *testing.T) {
	runStressMatrix(t, "core.RVar", 0.2, newFigure5)
}

func TestLinearizabilityFigure6Large(t *testing.T) {
	runStress(t, "core.LargeVar", newFigure6)
}

func TestLinearizabilityFigure7Bounded(t *testing.T) {
	runStress(t, "core.BoundedVar", newFigure7)
}

func TestLinearizabilityMutexBaseline(t *testing.T) {
	runStress(t, "baseline.MutexLLSC", newMutexAdapter)
}

func TestLinearizabilityIsraeliRappoport(t *testing.T) {
	runStress(t, "baseline.IsraeliRappoport", newIRAdapter)
}

func TestLinearizabilityPerVarBounded(t *testing.T) {
	runStress(t, "baseline.PerVarBounded", newPerVarAdapter)
}
