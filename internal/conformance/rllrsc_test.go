package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// rlarge adapts core.RLargeVar (Figure 6 over RLL/RSC) with W=1.
type rlarge struct {
	m     *machine.Machine
	v     *core.RLargeVar
	keeps []core.LKeep
	bufs  [][]uint64
}

func newRLarge(sub machine.Substrate, spurious float64) factory {
	return func(n int, initial uint64) register {
		m := machine.MustNew(substrateConfig(sub, n, spurious, 51))
		f, err := core.NewRLargeFamily(m, 1, 0)
		if err != nil {
			panic(err)
		}
		v, err := f.NewVar([]uint64{initial})
		if err != nil {
			panic(err)
		}
		a := &rlarge{m: m, v: v, keeps: make([]core.LKeep, n), bufs: make([][]uint64, n)}
		for i := range a.bufs {
			a.bufs[i] = make([]uint64, 1)
		}
		return a
	}
}

func (a *rlarge) Read(proc int) uint64 {
	a.v.Read(a.m.Proc(proc), a.bufs[proc])
	return a.bufs[proc][0]
}
func (a *rlarge) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *rlarge) LL(proc int) (uint64, bool) {
	p := a.m.Proc(proc)
	for {
		keep, res := a.v.WLL(p, a.bufs[proc])
		if res == core.Succ {
			a.keeps[proc] = keep
			return a.bufs[proc][0], true
		}
	}
}
func (a *rlarge) VL(proc int) bool { return a.v.VL(a.m.Proc(proc), a.keeps[proc]) }
func (a *rlarge) SC(proc int, v uint64) bool {
	return a.v.SC(a.m.Proc(proc), a.keeps[proc], []uint64{v})
}

// rbounded adapts core.RBoundedVar (Figure 7 over RLL/RSC).
type rbounded struct {
	f     *core.RBoundedFamily
	v     *core.RBoundedVar
	keeps []core.BKeep
}

func newRBounded(sub machine.Substrate, spurious float64) factory {
	return func(n int, initial uint64) register {
		m := machine.MustNew(substrateConfig(sub, n, spurious, 53))
		f, err := core.NewRBoundedFamily(m, 2)
		if err != nil {
			panic(err)
		}
		v, err := f.NewVar(initial)
		if err != nil {
			panic(err)
		}
		return &rbounded{f: f, v: v, keeps: make([]core.BKeep, n)}
	}
}

func (a *rbounded) proc(p int) *core.RBoundedProc {
	pr, err := a.f.Proc(p)
	if err != nil {
		panic(err)
	}
	return pr
}
func (a *rbounded) Read(proc int) uint64                 { return a.v.Read(a.proc(proc)) }
func (a *rbounded) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *rbounded) LL(proc int) (uint64, bool) {
	v, k, err := a.v.LL(a.proc(proc))
	if err != nil {
		panic(err)
	}
	a.keeps[proc] = k
	return v, true
}
func (a *rbounded) VL(proc int) bool { return a.v.VL(a.proc(proc), a.keeps[proc]) }
func (a *rbounded) SC(proc int, v uint64) bool {
	return a.v.SC(a.proc(proc), a.keeps[proc], v)
}

func TestLinearizabilityRLargeOverRLLRSC(t *testing.T) {
	runStressMatrix(t, "core.RLargeVar", 0.2, newRLarge)
}

func TestLinearizabilityRBoundedOverRLLRSC(t *testing.T) {
	runStressMatrix(t, "core.RBoundedVar", 0.2, newRBounded)
}
