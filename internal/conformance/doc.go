// Package conformance contains no runtime code: its test files stress
// every LL/VL/SC and CAS implementation in this repository with randomized
// concurrent workloads, record the resulting histories, and check each one
// against the Figure 2 sequential semantics with the Wing–Gong
// linearizability checker (experiment E9).
package conformance
