package conformance

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/structures"
	"repro/internal/universal"
	"repro/internal/word"
)

// This file extends the substrate-differential matrix to the two
// container figures it did not cover: the deque (the universal
// construction applied to a sequential deque) and the snapshot (the
// canonical VL application). The native structures.Deque and
// structures.Snapshot are hardwired to raw sync/atomic; their
// machine-backed twins here run the identical algorithms over
// universal.RObject and core.RVar on both machine substrates, compared
// op for op against the native originals (metamorphic differential) and
// stressed concurrently for their defining invariants (conservation for
// the deque, cut atomicity for the snapshot).

// machineDeque is the structures.Deque algorithm verbatim over the
// machine-backed universal construction: segment 0 packs
// (head<<16 | length), segments 1..cap hold the ring.
type machineDeque struct {
	m     *machine.Machine
	o     *universal.RObject
	cap   int
	procs []*universal.RProc
}

const mdMetaShift = 16

func newMachineDeque(t *testing.T, sub machine.Substrate, n, capacity int, spurious float64) *machineDeque {
	t.Helper()
	m := machine.MustNew(substrateConfig(sub, n, spurious, 31))
	o, err := universal.NewRObject(m, 1+capacity, 32, make([]uint64, 1+capacity))
	if err != nil {
		t.Fatal(err)
	}
	d := &machineDeque{m: m, o: o, cap: capacity, procs: make([]*universal.RProc, n)}
	for p := 0; p < n; p++ {
		d.procs[p] = o.Proc(m.Proc(p))
	}
	return d
}

func (d *machineDeque) slot(head, off int) int { return 1 + (head+off)%d.cap }

func (d *machineDeque) push(proc int, v uint64, front bool) bool {
	var ok bool
	d.o.Apply(d.procs[proc], func(cur, next []uint64) {
		copy(next, cur)
		head, length := int(cur[0]>>mdMetaShift), int(cur[0]&(1<<mdMetaShift-1))
		ok = length < d.cap
		if !ok {
			return
		}
		if front {
			head = (head - 1 + d.cap) % d.cap
			next[d.slot(head, 0)] = v
		} else {
			next[d.slot(head, length)] = v
		}
		next[0] = uint64(head)<<mdMetaShift | uint64(length+1)
	})
	return ok
}

func (d *machineDeque) pop(proc int, front bool) (uint64, bool) {
	var v uint64
	var ok bool
	d.o.Apply(d.procs[proc], func(cur, next []uint64) {
		copy(next, cur)
		head, length := int(cur[0]>>mdMetaShift), int(cur[0]&(1<<mdMetaShift-1))
		ok = length > 0
		if !ok {
			return
		}
		if front {
			v = cur[d.slot(head, 0)]
			head = (head + 1) % d.cap
		} else {
			v = cur[d.slot(head, length-1)]
		}
		next[0] = uint64(head)<<mdMetaShift | uint64(length-1)
	})
	return v, ok
}

func (d *machineDeque) len(proc int) int {
	dst := make([]uint64, 1+d.cap)
	d.o.Read(d.procs[proc], dst)
	return int(dst[0] & (1<<mdMetaShift - 1))
}

// TestDequeCrossSubstrateOracle replays one pseudo-random operation
// sequence on the machine-backed deque (each substrate, the sim cell
// with heavy spurious failure) and on the native structures.Deque, and
// requires op-for-op identical results: same accept/reject decisions,
// same popped values, same lengths. Single-threaded, so any divergence
// is a substrate or construction bug, not a schedule.
func TestDequeCrossSubstrateOracle(t *testing.T) {
	const capacity, ops = 5, 400
	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		spurious := 0.2
		if sub == machine.SubstrateNative {
			spurious = 0
		}
		t.Run(sub.String(), func(t *testing.T) {
			md := newMachineDeque(t, sub, 1, capacity, spurious)
			nd, err := structures.NewDeque(1, capacity)
			if err != nil {
				t.Fatal(err)
			}
			np, err := nd.Proc(0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1234))
			for i := 0; i < ops; i++ {
				switch rng.Intn(4) {
				case 0:
					v := uint64(rng.Intn(100))
					got, want := md.push(0, v, true), nd.PushFront(np, v)
					if got != want {
						t.Fatalf("op %d PushFront(%d): machine %v, native %v", i, v, got, want)
					}
				case 1:
					v := uint64(rng.Intn(100))
					got, want := md.push(0, v, false), nd.PushBack(np, v)
					if got != want {
						t.Fatalf("op %d PushBack(%d): machine %v, native %v", i, v, got, want)
					}
				case 2:
					gv, gok := md.pop(0, true)
					wv, wok := nd.PopFront(np)
					if gv != wv || gok != wok {
						t.Fatalf("op %d PopFront: machine (%d,%v), native (%d,%v)", i, gv, gok, wv, wok)
					}
				case 3:
					gv, gok := md.pop(0, false)
					wv, wok := nd.PopBack(np)
					if gv != wv || gok != wok {
						t.Fatalf("op %d PopBack: machine (%d,%v), native (%d,%v)", i, gv, gok, wv, wok)
					}
				}
				if gl, wl := md.len(0), nd.Len(np); gl != wl {
					t.Fatalf("op %d: length machine %d, native %d", i, gl, wl)
				}
			}
		})
	}
}

// TestDequeConcurrentConservation stresses the machine-backed deque on
// both substrates with concurrent pushers and poppers and checks value
// conservation: every accepted push is popped exactly once (during the
// run or in the final drain), nothing is duplicated, nothing invented.
func TestDequeConcurrentConservation(t *testing.T) {
	const procs, capacity, perProc = 4, 8, 150
	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		spurious := 0.1
		if sub == machine.SubstrateNative {
			spurious = 0
		}
		t.Run(sub.String(), func(t *testing.T) {
			d := newMachineDeque(t, sub, procs, capacity, spurious)
			pushed := make([][]uint64, procs) // accepted pushes, per proc
			popped := make([][]uint64, procs)
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p)*101 + 7))
					for i := 0; i < perProc; i++ {
						if rng.Intn(2) == 0 {
							v := uint64(p)<<16 | uint64(i)
							if d.push(p, v, rng.Intn(2) == 0) {
								pushed[p] = append(pushed[p], v)
							}
						} else {
							if v, ok := d.pop(p, rng.Intn(2) == 0); ok {
								popped[p] = append(popped[p], v)
							}
						}
					}
				}(p)
			}
			wg.Wait()
			remaining := []uint64{}
			for {
				v, ok := d.pop(0, true)
				if !ok {
					break
				}
				remaining = append(remaining, v)
			}
			if len(remaining) > capacity {
				t.Fatalf("drained %d values from a capacity-%d deque", len(remaining), capacity)
			}
			want := map[uint64]int{}
			total := 0
			for _, vs := range pushed {
				for _, v := range vs {
					want[v]++
					total++
				}
			}
			got := map[uint64]int{}
			for _, vs := range popped {
				for _, v := range vs {
					got[v]++
				}
			}
			for _, v := range remaining {
				got[v]++
			}
			if len(got) != len(want) || total != len(remaining)+func() int {
				n := 0
				for _, vs := range popped {
					n += len(vs)
				}
				return n
			}() {
				t.Fatalf("conservation violated: pushed %d distinct values, recovered %d", len(want), len(got))
			}
			for v, n := range want {
				if got[v] != n {
					t.Fatalf("value %#x pushed %d times, recovered %d times", v, n, got[v])
				}
			}
		})
	}
}

// machineSnapshot is the structures.Snapshot algorithm over machine-
// backed Figure 5 variables: LL every variable, then VL every variable;
// all validations passing proves the collected values co-existed at the
// final LL — the canonical use of VL the paper argues for.
type machineSnapshot struct {
	vars []*core.RVar
}

func (s *machineSnapshot) collect(p *machine.Proc, dst []uint64, keeps []core.Keep) {
	var w contention.Waiter
retry:
	for ; ; w.Wait(nil, contention.Ambient, contention.Interference) {
		for i, v := range s.vars {
			dst[i], keeps[i] = v.LL(p)
		}
		for i, v := range s.vars {
			if !v.VL(p, keeps[i]) {
				continue retry
			}
		}
		return
	}
}

// TestSnapshotCrossSubstrateOracle interleaves writes and collects
// single-threaded on both machine substrates and against the native
// structures.Snapshot, requiring identical collected vectors from the
// same operation sequence.
func TestSnapshotCrossSubstrateOracle(t *testing.T) {
	const vars, rounds = 3, 120
	run := func(t *testing.T, write func(i int, v uint64), collect func(dst []uint64)) [][]uint64 {
		rng := rand.New(rand.NewSource(4321))
		var out [][]uint64
		for r := 0; r < rounds; r++ {
			write(rng.Intn(vars), uint64(rng.Intn(50)))
			if rng.Intn(3) == 0 {
				dst := make([]uint64, vars)
				collect(dst)
				out = append(out, dst)
			}
		}
		return out
	}

	// Native original: core.Var set under structures.Snapshot.
	nvars := make([]*core.Var, vars)
	for i := range nvars {
		nvars[i] = core.MustNewVar(word.DefaultLayout, 0)
	}
	nsnap, err := structures.NewSnapshot(nvars)
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, func(i int, v uint64) {
		for {
			_, k := nvars[i].LL()
			if nvars[i].SC(k, v) {
				return
			}
		}
	}, nsnap.Collect)

	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		spurious := 0.2
		if sub == machine.SubstrateNative {
			spurious = 0
		}
		t.Run(sub.String(), func(t *testing.T) {
			m := machine.MustNew(substrateConfig(sub, 1, spurious, 17))
			ms := &machineSnapshot{vars: make([]*core.RVar, vars)}
			for i := range ms.vars {
				v, err := core.NewRVar(m, word.DefaultLayout, 0)
				if err != nil {
					t.Fatal(err)
				}
				ms.vars[i] = v
			}
			p := m.Proc(0)
			keeps := make([]core.Keep, vars)
			got := run(t, func(i int, v uint64) {
				for {
					_, k := ms.vars[i].LL(p)
					if ms.vars[i].SC(p, k, v) {
						return
					}
				}
			}, func(dst []uint64) { ms.collect(p, dst, keeps) })
			if len(got) != len(want) {
				t.Fatalf("collected %d snapshots, native %d", len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("snapshot %d var %d: machine %d, native %d", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// TestSnapshotCutAtomicity is the discriminating concurrency test: a
// writer maintains vars[0] >= vars[1] at every instant (it bumps
// vars[0] first, then brings vars[1] up to match). A naive unvalidated
// collect reads vars[0] early and vars[1] later, and can observe
// vars[1] > vars[0] after the writer advances both; the VL-validated
// snapshot never can. Runs on both machine substrates.
func TestSnapshotCutAtomicity(t *testing.T) {
	const rounds = 400
	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		spurious := 0.1
		if sub == machine.SubstrateNative {
			spurious = 0
		}
		t.Run(sub.String(), func(t *testing.T) {
			m := machine.MustNew(substrateConfig(sub, 2, spurious, 23))
			ms := &machineSnapshot{vars: make([]*core.RVar, 2)}
			for i := range ms.vars {
				v, err := core.NewRVar(m, word.DefaultLayout, 0)
				if err != nil {
					t.Fatal(err)
				}
				ms.vars[i] = v
			}
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer done.Store(true)
				p := m.Proc(0)
				set := func(i int, v uint64) {
					for {
						_, k := ms.vars[i].LL(p)
						if ms.vars[i].SC(p, k, v) {
							return
						}
					}
				}
				for n := uint64(1); n <= rounds; n++ {
					set(0, n) // vars[0] leads...
					set(1, n) // ...vars[1] catches up
				}
			}()
			p := m.Proc(1)
			dst := make([]uint64, 2)
			keeps := make([]core.Keep, 2)
			collects := 0
			for !done.Load() {
				ms.collect(p, dst, keeps)
				collects++
				if dst[0] < dst[1] {
					t.Fatalf("collect %d observed a torn cut: vars[0]=%d < vars[1]=%d", collects, dst[0], dst[1])
				}
			}
			wg.Wait()
			if collects == 0 {
				t.Fatal("collector never ran")
			}
		})
	}
}
