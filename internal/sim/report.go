package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

// Schema identifies the JSON report layout. Consumers reject unknown
// schemas; adding fields is compatible, renaming or retyping is not.
const Schema = "llsc-sim/v1"

// CellID names one sweep-grid cell.
type CellID struct {
	Policy string `json:"policy"`
	Elim   bool   `json:"elim"`
	Shards int    `json:"shards"`
}

func (c CellID) String() string {
	e := "noelim"
	if c.Elim {
		e = "elim"
	}
	return fmt.Sprintf("%s-%s-s%d", c.Policy, e, c.Shards)
}

// CellResult is one scored cell: the identity, the fitness score, the
// raw outcome measures it was computed from, the full counter snapshot,
// and an embedded llsc-bench/v1 record so sim cells flow through the
// same downstream tooling as wall-clock benchmarks.
type CellResult struct {
	CellID
	Score      float64           `json:"score"`
	Offered    uint64            `json:"offered"`
	Completed  uint64            `json:"completed"`
	Eliminated uint64            `json:"eliminated,omitempty"`
	Restarts   uint64            `json:"restarts,omitempty"`
	Ticks      uint64            `json:"ticks"`
	P99Latency uint64            `json:"p99_latency_ticks"`
	P99Retries uint64            `json:"p99_retries"`
	MeanLat    float64           `json:"mean_latency_ticks"`
	Counters   map[string]uint64 `json:"counters,omitempty"`
	Bench      *bench.Record     `json:"bench,omitempty"`
}

// Counterfactual is one decision-trace entry: the score the winning
// configuration would have achieved had exactly one dimension been
// changed to the given alternative, and the delta lost by doing so
// (winner score − alternative score; positive means the winner's choice
// paid off).
type Counterfactual struct {
	Dimension   string  `json:"dimension"` // policy | elimination | shards
	Alternative string  `json:"alternative"`
	Cell        CellID  `json:"cell"`
	Score       float64 `json:"score"`
	Delta       float64 `json:"delta"`
}

// Decisions is the sweep's conclusion: the winning cell and the
// counterfactual cost of every single-dimension deviation from it.
type Decisions struct {
	Winner          CellID           `json:"winner"`
	Score           float64          `json:"score"`
	Counterfactuals []Counterfactual `json:"counterfactuals"`
}

// Report is the full llsc-sim/v1 run record. With Scenario.RecordTrace
// set it embeds the arrival trace, making the report self-contained for
// Replay. Reports are byte-deterministic: same scenario (including
// seed) ⇒ identical bytes.
type Report struct {
	Schema    string       `json:"schema"`
	Scenario  Scenario     `json:"scenario"`
	Cells     []CellResult `json:"cells"`
	Decisions Decisions    `json:"decisions"`
	Trace     []Request    `json:"trace,omitempty"`
}

// RunSweep samples the scenario's arrival trace and scores every cell of
// the sweep grid against it.
func RunSweep(sc Scenario) (*Report, error) {
	trace, err := SampleTrace(sc)
	if err != nil {
		return nil, err
	}
	return runSweepTrace(sc, trace)
}

// Replay re-executes a recorded report's sweep against its embedded
// arrival trace (not a fresh sample), reproducing the original run's
// per-cell scores; CompareCells verifies the equivalence.
func Replay(rep *Report) (*Report, error) {
	if rep.Schema != Schema {
		return nil, fmt.Errorf("sim: report has schema %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Trace) == 0 {
		return nil, fmt.Errorf("sim: report has no embedded trace (record_trace was off); cannot replay")
	}
	if err := rep.Scenario.Validate(); err != nil {
		return nil, err
	}
	return runSweepTrace(rep.Scenario, rep.Trace)
}

func runSweepTrace(sc Scenario, trace []Request) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var cells []CellResult
	for _, cell := range sc.Sweep.grid() {
		res, err := runCell(sc, trace, cell)
		if err != nil {
			return nil, err
		}
		cells = append(cells, res)
	}
	rep := &Report{
		Schema:    Schema,
		Scenario:  sc,
		Cells:     cells,
		Decisions: decide(cells),
	}
	if sc.RecordTrace {
		rep.Trace = trace
	}
	return rep, nil
}

// grid enumerates the sweep cells in deterministic policy-major order.
func (s Sweep) grid() []CellID {
	var cells []CellID
	for _, pol := range s.Policies {
		for _, el := range s.Elimination {
			for _, sh := range s.Shards {
				cells = append(cells, CellID{Policy: pol, Elim: el, Shards: sh})
			}
		}
	}
	return cells
}

// decide picks the winner (highest score, ties to grid order) and
// computes the counterfactual delta for every single-dimension
// alternative present in the grid.
func decide(cells []CellResult) Decisions {
	best := 0
	for i, c := range cells {
		if c.Score > cells[best].Score {
			best = i
		}
	}
	win := cells[best]
	byID := make(map[CellID]CellResult, len(cells))
	for _, c := range cells {
		byID[c.CellID] = c
	}
	var cfs []Counterfactual
	add := func(dim, alt string, id CellID) {
		if id == win.CellID {
			return
		}
		c, ok := byID[id]
		if !ok {
			return
		}
		cfs = append(cfs, Counterfactual{
			Dimension:   dim,
			Alternative: alt,
			Cell:        id,
			Score:       c.Score,
			Delta:       win.Score - c.Score,
		})
	}
	seen := map[CellID]bool{}
	for _, c := range cells {
		id := win.CellID
		id.Policy = c.Policy
		if !seen[id] {
			seen[id] = true
			add("policy", c.Policy, id)
		}
	}
	seen = map[CellID]bool{}
	for _, el := range []bool{false, true} {
		id := win.CellID
		id.Elim = el
		if !seen[id] {
			seen[id] = true
			add("elimination", fmt.Sprintf("%v", el), id)
		}
	}
	seen = map[CellID]bool{}
	for _, c := range cells {
		id := win.CellID
		id.Shards = c.Shards
		if !seen[id] {
			seen[id] = true
			add("shards", fmt.Sprintf("%d", c.Shards), id)
		}
	}
	return Decisions{Winner: win.CellID, Score: win.Score, Counterfactuals: cfs}
}

// CompareCells verifies that two reports of the same sweep agree on
// every cell's fitness-relevant outcome, returning one human-readable
// mismatch line per divergence (empty = equivalent). Replay uses it to
// prove a recorded trace reproduces the original scores.
func CompareCells(a, b *Report) []string {
	var out []string
	if len(a.Cells) != len(b.Cells) {
		return []string{fmt.Sprintf("cell count %d vs %d", len(a.Cells), len(b.Cells))}
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.CellID != cb.CellID {
			out = append(out, fmt.Sprintf("cell %d identity %v vs %v", i, ca.CellID, cb.CellID))
			continue
		}
		if ca.Score != cb.Score || ca.Completed != cb.Completed || ca.Ticks != cb.Ticks ||
			ca.P99Latency != cb.P99Latency || ca.Eliminated != cb.Eliminated || ca.Restarts != cb.Restarts {
			out = append(out, fmt.Sprintf("cell %v: score %.6f/%.6f completed %d/%d ticks %d/%d p99 %d/%d elim %d/%d restarts %d/%d",
				ca.CellID, ca.Score, cb.Score, ca.Completed, cb.Completed, ca.Ticks, cb.Ticks,
				ca.P99Latency, cb.P99Latency, ca.Eliminated, cb.Eliminated, ca.Restarts, cb.Restarts))
		}
	}
	return out
}

// Marshal renders the report as indented, byte-deterministic JSON.
func (r *Report) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the report atomically (via rename).
func (r *Report) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadReport reads and schema-checks an llsc-sim/v1 report.
func ReadReport(rd io.Reader) (*Report, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("sim: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("sim: report has schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile reads an llsc-sim/v1 report from path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// Summary renders the per-cell table and decision trace as text, sorted
// by descending score (ties in grid order), for CLI output.
func (r *Report) Summary(w io.Writer) {
	order := make([]int, len(r.Cells))
	for i := range order {
		order[i] = i
	}
	// Stable selection sort by descending score: n is tiny.
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if r.Cells[order[j]].Score > r.Cells[order[best]].Score {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	fmt.Fprintf(w, "scenario %s (figure %s, %d procs, %d keys, seed %d): %d cells\n",
		r.Scenario.Name, r.Scenario.Figure, r.Scenario.Procs, r.Scenario.Keys, r.Scenario.Seed, len(r.Cells))
	fmt.Fprintf(w, "%-22s %10s %9s %9s %6s %9s %8s %8s\n",
		"cell", "score", "offered", "done", "elim", "restarts", "p99lat", "p99try")
	for _, i := range order {
		c := r.Cells[i]
		fmt.Fprintf(w, "%-22s %10.3f %9d %9d %6d %9d %8d %8d\n",
			c.CellID.String(), c.Score, c.Offered, c.Completed, c.Eliminated, c.Restarts, c.P99Latency, c.P99Retries)
	}
	d := r.Decisions
	fmt.Fprintf(w, "winner: %s (score %.3f)\n", d.Winner.String(), d.Score)
	for _, cf := range d.Counterfactuals {
		fmt.Fprintf(w, "  counterfactual %s=%s: score %.3f (delta %+.3f)\n",
			cf.Dimension, cf.Alternative, cf.Score, cf.Delta)
	}
}
