package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fullYAML exercises every schema feature: nested mappings, block
// sequences of mappings, flow sequences, comments, quoted strings,
// booleans, and the optional crash block.
const fullYAML = `# a scenario exercising the whole schema
name: "yaml-full"
figure: fig7
procs: 4
keys: 8
hot: 0.5
horizon: 4000
seed: 42
spurious: 0.01
mix:
  inc: 0.45
  dec: 0.35
  read: 0.2
clients:
  - procs: 3
    arrival:
      process: poisson # the steady tenant
      rate: 0.01
  - procs: 1
    arrival:
      process: weibull
      rate: 0.04
      shape: 0.5
phases: [0.5, 2.0, 1.0]
crash:
  victims: 1
  at_op: 50
  budget: 2
  restart_delay: 100
record_trace: true
sweep:
  policies: [none, backoff]
  elimination: [false, true]
  shards: [1, 2]
  base: 8
  max: 256
fitness:
  throughput: 1
  p99_latency: 0.5
  wedge_free: 2
`

func fullScenario() Scenario {
	return Scenario{
		Name: "yaml-full", Figure: "fig7", Procs: 4, Keys: 8, Hot: 0.5,
		Horizon: 4000, Seed: 42, Spurious: 0.01,
		Mix: Mix{Inc: 0.45, Dec: 0.35, Read: 0.2},
		Clients: []ClientSpec{
			{Procs: 3, Arrival: Arrival{Process: "poisson", Rate: 0.01}},
			{Procs: 1, Arrival: Arrival{Process: "weibull", Rate: 0.04, Shape: 0.5}},
		},
		Phases:      []float64{0.5, 2.0, 1.0},
		Crash:       &CrashSpec{Victims: 1, AtOp: 50, Budget: 2, RestartDelay: 100},
		RecordTrace: true,
		Sweep: Sweep{
			Policies: []string{"none", "backoff"}, Elimination: []bool{false, true},
			Shards: []int{1, 2}, Base: 8, Max: 256,
		},
		Fitness: Weights{Throughput: 1, P99Latency: 0.5, WedgeFree: 2},
	}
}

func writeConfig(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDecodeFileYAML(t *testing.T) {
	sc, err := DecodeFile(writeConfig(t, "full.yaml", fullYAML))
	if err != nil {
		t.Fatalf("DecodeFile: %v", err)
	}
	if want := fullScenario(); !reflect.DeepEqual(sc, want) {
		t.Fatalf("decoded scenario differs:\n got %+v\nwant %+v", sc, want)
	}
}

// TestDecodeFileJSONEquivalence checks the two formats share one
// schema: a scenario marshalled to JSON decodes to the same struct the
// YAML form does.
func TestDecodeFileJSONEquivalence(t *testing.T) {
	want := fullScenario()
	js, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := DecodeFile(writeConfig(t, "full.json", string(js)))
	if err != nil {
		t.Fatalf("DecodeFile: %v", err)
	}
	if !reflect.DeepEqual(sc, want) {
		t.Fatalf("JSON round trip differs:\n got %+v\nwant %+v", sc, want)
	}
}

func TestDecodeFileErrors(t *testing.T) {
	valid := fullYAML
	cases := []struct {
		name    string
		file    string
		content string
		want    string
	}{
		{"unknown yaml key", "a.yaml", valid + "turbo: true\n", "turbo"},
		{"unknown json key", "a.json", `{"schema-typo": 1}`, "schema-typo"},
		{"unsupported extension", "a.toml", "name = 1", "extension"},
		{"tab indentation", "a.yaml", "name: x\n\tfigure: fig5\n", "tab"},
		{"duplicate key", "a.yaml", "name: x\nname: y\n", "duplicate"},
		{"missing colon", "a.yaml", "name x\n", "key: value"},
		{"empty document", "a.yaml", "# only a comment\n", "empty"},
		{"sequence in mapping", "a.yaml", "name: x\n- 3\n", "sequence"},
		{"invalid scenario", "a.yaml", "name: x\nfigure: fig9\n", "figure"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeFile(writeConfig(t, tc.file, tc.content))
			if err == nil {
				t.Fatal("DecodeFile accepted the config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseYAMLScalars(t *testing.T) {
	tree, err := parseYAML([]byte(`
str: bare
quoted: "a: #b"
single: 'it''s'
num: -3
float: 0.25
yes: true
no: false
nil: null
empty:
flow: [1, two, 3.5]
`))
	if err != nil {
		t.Fatal(err)
	}
	m := tree.(map[string]any)
	checks := map[string]any{
		"str": "bare", "quoted": "a: #b", "single": "it's",
		"num": int64(-3), "float": 0.25, "yes": true, "no": false,
	}
	for k, want := range checks {
		if got := m[k]; got != want {
			t.Errorf("%s = %#v, want %#v", k, got, want)
		}
	}
	for _, k := range []string{"nil", "empty"} {
		if v, ok := m[k]; !ok || v != nil {
			t.Errorf("%s = %#v, want present nil", k, v)
		}
	}
	if got, want := m["flow"], []any{int64(1), "two", 3.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("flow = %#v, want %#v", got, want)
	}
}
