package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stress"
)

// Tick-cost model: every shared-memory machine operation costs one
// virtual tick, and a contention-policy wait costs its length in spin
// units, tick for tick — both are the same tens-of-nanoseconds order on
// real hardware, which keeps the model honest without calibration.
const (
	opCost = 1
	// elimWindow is how long an unmatched elimination offer parks before
	// giving up, in ticks.
	elimWindow = 64
)

// engine is the discrete-event core: a virtual-time serializing
// scheduler. Exactly one simulated processor runs at any instant (the
// floor holder); everyone else is parked on the condition variable with
// a ready-at virtual time, and the floor always passes to the earliest
// ready processor (ties to the lowest id). This is what makes runs
// deterministic: the interleaving is a pure function of the virtual
// timeline, never of host scheduling.
//
// It implements machine.OpStepper, so the machine consults it before
// every shared-memory operation, and it is installed as the contention
// policies' Sleeper, so backoff waits advance virtual time instead of
// burning host cycles.
type engine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	state   []pstate
	readyAt []uint64
	vt      []uint64 // per-proc virtual clock; written by the owner while granted
	now     uint64   // global virtual time, advances monotonically
	turn    int
	grants  uint64
}

type pstate uint8

const (
	stRunning pstate = iota // executing (or not yet parked at startup)
	stReady                 // parked, runnable at readyAt
	stDone                  // driver finished
)

func newEngine(procs int) *engine {
	e := &engine{
		state:   make([]pstate, procs),
		readyAt: make([]uint64, procs),
		vt:      make([]uint64, procs),
		turn:    -1,
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Step implements machine.Scheduler; the machine always calls StepOp
// (engine satisfies OpStepper), so this exists only to fill the
// interface.
func (e *engine) Step(proc int) { e.StepOp(proc, 0, 0) }

// StepOp parks proc until the virtual timeline reaches its clock, then
// charges the operation's tick cost. Called by the machine before every
// shared-memory operation.
func (e *engine) StepOp(proc int, op machine.OpKind, word uint64) {
	e.pause(proc, e.vt[proc], opCost)
}

// sleep is the contention.Sleeper: a policy wait of units spin units
// parks proc for that many ticks.
func (e *engine) sleep(proc int, units uint32) {
	e.pause(proc, e.vt[proc]+uint64(units), 0)
}

// sleepUntil parks proc until virtual time t (no-op if already past).
func (e *engine) sleepUntil(proc int, t uint64) {
	e.pause(proc, t, 0)
}

// vtOf returns proc's virtual clock. Only proc's own driver goroutine
// may call it (the clock is written by that goroutine while granted).
func (e *engine) vtOf(proc int) uint64 { return e.vt[proc] }

// pause yields the floor, marks proc runnable at the given virtual time,
// and blocks until the scheduler grants the floor back, at which point
// proc's clock advances to the grant instant plus cost.
func (e *engine) pause(proc int, at uint64, cost uint64) {
	e.mu.Lock()
	e.state[proc] = stReady
	e.readyAt[proc] = at
	if e.turn == proc {
		e.turn = -1
	}
	e.schedule()
	for e.turn != proc {
		e.cond.Wait()
	}
	e.state[proc] = stRunning
	e.vt[proc] = e.now + cost
	e.mu.Unlock()
}

// done retires proc's driver and passes the floor on.
func (e *engine) done(proc int) {
	e.mu.Lock()
	e.state[proc] = stDone
	if e.turn == proc {
		e.turn = -1
	}
	e.schedule()
	e.mu.Unlock()
}

// schedule grants the floor to the earliest ready processor (ties to the
// lowest id), advancing global virtual time to its ready instant. It
// waits for every processor to park first (relevant only at startup,
// when drivers race to their first pause). Caller holds e.mu.
func (e *engine) schedule() {
	if e.turn != -1 {
		return
	}
	best := -1
	var bestAt uint64
	for p, st := range e.state {
		if st == stRunning {
			return // not everyone has parked yet
		}
		if st != stReady {
			continue
		}
		if best == -1 || e.readyAt[p] < bestAt {
			best, bestAt = p, e.readyAt[p]
		}
	}
	if best == -1 {
		e.cond.Broadcast() // all done
		return
	}
	if bestAt > e.now {
		e.now = bestAt
	}
	e.turn = best
	e.grants++
	e.cond.Broadcast()
}

// elimOffer is one parked complementary-pairing offer. All elimTable
// state is accessed only by the current floor holder, so the engine's
// mutex handoffs serialize it without further locking.
type elimOffer struct {
	kind  ReqKind
	taken bool
}

type elimTable struct {
	offers map[int]*elimOffer // by key
}

// cellRun executes one sweep cell: the scenario's full trace against one
// (policy, elimination, shards) configuration on a fresh machine.
type cellRun struct {
	sc       Scenario
	cell     CellID
	trace    [][]Request
	offered  uint64
	eng      *engine
	m        *machine.Machine
	met      *obs.Metrics
	regs     []stress.Register // keys × shards instances, reg(key,stripe)
	shards   int
	maxVal   uint64
	policy   *contention.Policy
	elim     *elimTable
	plan     fault.Plan
	lat      *obs.Hist // per-request latency, ticks
	retries  *obs.Hist // per-completed-request failed attempts
	wg       sync.WaitGroup
	driveErr []error // per-proc fatal driver errors (not crash panics)
}

// runCell builds and executes one sweep cell, returning its result. The
// trace is shared across cells (paired comparison); everything else —
// machine, registers, metrics, policy state — is cell-fresh.
func runCell(sc Scenario, trace []Request, cell CellID) (CellResult, error) {
	spec, ok := figureSpec(sc.Figure)
	if !ok {
		return CellResult{}, fmt.Errorf("sim: unknown figure %q", sc.Figure)
	}
	eng := newEngine(sc.Procs)
	met := obs.NewWithStripes(sc.Procs)

	policy, err := buildPolicy(cell.Policy, sc.Sweep, sc.Seed)
	if err != nil {
		return CellResult{}, err
	}
	policy.SetMetrics(met)
	policy.SetSleeper(eng.sleep)

	cfg := machine.Config{
		Procs:            sc.Procs,
		Seed:             sc.Seed,
		SpuriousFailProb: sc.Spurious,
		Scheduler:        eng,
		Observer:         met.MachineObserver(),
	}
	var plan fault.Plan
	if c := sc.Crash; c != nil {
		plans := make([]fault.Plan, c.Victims)
		for i := 0; i < c.Victims; i++ {
			plans[i] = fault.NewCrashRestart(sc.Procs-1-i, c.AtOp, c.Budget)
		}
		plan = fault.Compose(plans...)
		plan.SetMetrics(met)
		cfg.FaultPlan = plan
	}
	m, err := machine.New(cfg)
	if err != nil {
		return CellResult{}, err
	}

	regs := make([]stress.Register, sc.Keys*cell.Shards)
	for i := range regs {
		reg, err := spec.New(m, met)
		if err != nil {
			return CellResult{}, fmt.Errorf("sim: building %s register %d: %w", sc.Figure, i, err)
		}
		regs[i] = reg
	}

	c := &cellRun{
		sc:       sc,
		cell:     cell,
		trace:    splitTrace(trace, sc.Procs),
		offered:  uint64(len(trace)),
		eng:      eng,
		m:        m,
		met:      met,
		regs:     regs,
		shards:   cell.Shards,
		maxVal:   regs[0].MaxVal(),
		policy:   policy,
		plan:     plan,
		lat:      &obs.Hist{},
		retries:  &obs.Hist{},
		driveErr: make([]error, sc.Procs),
	}
	if cell.Elim {
		c.elim = &elimTable{offers: make(map[int]*elimOffer)}
	}

	for p := 0; p < sc.Procs; p++ {
		c.wg.Add(1)
		go c.drive(p)
	}
	c.wg.Wait()
	for p, err := range c.driveErr {
		if err != nil {
			return CellResult{}, fmt.Errorf("sim: cell %v proc %d: %w", cell, p, err)
		}
	}
	return c.harvest(), nil
}

// buildPolicy realizes one sweep policy, injecting the sweep's tuned
// backoff window when set.
func buildPolicy(name string, sw Sweep, seed int64) (*contention.Policy, error) {
	kind, err := contention.ParseKind(name)
	if err != nil {
		return nil, err
	}
	return contention.FromParams(contention.Params{
		Kind: kind,
		Base: sw.Base,
		Max:  sw.Max,
		Seed: uint64(seed) + 0x51_6D_C0DE,
	}), nil
}

// hardStop is where in-flight work is abandoned: arrivals stop at the
// horizon, execution gets another full horizon to drain, and whatever
// remains counts against wedge freedom.
func (c *cellRun) hardStop() uint64 { return 2 * c.sc.Horizon }

// drive is one processor's driver goroutine: execute the processor's
// arrival stream in order, recovering crash kills, until the stream ends
// or the hard stop abandons the backlog.
func (c *cellRun) drive(p int) {
	defer c.wg.Done()
	defer c.eng.done(p)
	abandoned := false
	for _, r := range c.trace[p] {
		c.met.IncProc(p, obs.CtrSimRequests)
		if abandoned {
			continue // still offered (and counted), never served
		}
		if c.eng.vtOf(p) < r.At {
			c.eng.sleepUntil(p, r.At)
		}
		for {
			completed, crashed := c.execProtected(p, r)
			if crashed {
				if err := c.recoverProc(p); err != nil {
					c.driveErr[p] = err
					return
				}
				if c.eng.vtOf(p) > c.hardStop() {
					break
				}
				continue // retry the interrupted request
			}
			if completed {
				c.met.IncProc(p, obs.CtrSimCompleted)
				c.lat.Observe(c.eng.vtOf(p) - r.At)
			}
			break
		}
		if c.eng.vtOf(p) > c.hardStop() {
			abandoned = true
		}
	}
}

// execProtected runs one request, converting a crash kill into a flag.
func (c *cellRun) execProtected(p int, r Request) (completed, crashed bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(machine.CrashPanic); ok {
				crashed = true
				return
			}
			panic(rec)
		}
	}()
	return c.exec(p, r), false
}

// recoverProc brings processor p's next incarnation up: wait out the
// restart delay in virtual time, swap the machine handle, and run every
// register's crash-recovery reclamation. The reclamation itself performs
// machine operations, so a storm can kill the processor again mid-
// recovery — hence the retry loop (bounded by the storm's kill budget).
func (c *cellRun) recoverProc(p int) error {
	for {
		c.met.IncProc(p, obs.CtrSimRestarts)
		c.eng.sleepUntil(p, c.eng.vtOf(p)+c.sc.Crash.RestartDelay)
		if _, err := c.m.Restart(p); err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		again := false
		err := func() (err error) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(machine.CrashPanic); ok {
						again = true
						return
					}
					panic(rec)
				}
			}()
			for _, reg := range c.regs {
				if rec, ok := reg.(stress.Recoverer); ok {
					if err := rec.RecoverProc(p); err != nil {
						return err
					}
				}
			}
			return nil
		}()
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		if !again {
			return nil
		}
	}
}

// reg returns the register instance for (key, stripe).
func (c *cellRun) reg(key, stripe int) stress.Register {
	return c.regs[key*c.shards+stripe]
}

// exec serves one request, returning false if the hard stop abandoned
// it. Reads read every stripe of the key (a striped counter's value is
// the sum of its stripes); updates pick a stripe by (proc+attempt) mod
// shards — contention rotates the victim to a fresh stripe — and retry
// under the cell's contention policy, attempting dispatch-level
// elimination after each failure.
func (c *cellRun) exec(p int, r Request) bool {
	if r.Kind == ReqRead {
		for s := 0; s < c.shards; s++ {
			c.reg(r.Key, s).Read(p)
		}
		return true
	}
	var w contention.Waiter
	w.Seed(c.policy, p)
	fails := uint64(0)
	for attempt := 0; ; attempt++ {
		if c.eng.vtOf(p) > c.hardStop() {
			return false
		}
		if c.tryApply(c.reg(r.Key, (p+attempt)%c.shards), p, r.Kind) {
			c.retries.Observe(fails)
			return true
		}
		fails++
		if c.elim != nil && c.tryEliminate(p, r) {
			c.retries.Observe(fails)
			return true
		}
		w.Wait(c.policy, p, contention.Interference)
	}
}

// tryApply makes one optimistic attempt to apply the request's delta to
// one register: LL;SC on the LL/SC figures, Read;CAS on Figure 3.
func (c *cellRun) tryApply(reg stress.Register, p int, kind ReqKind) bool {
	switch r := reg.(type) {
	case stress.LLSC:
		return r.SC(p, c.next(r.LL(p), kind))
	case stress.CASer:
		old := r.Read(p)
		return r.CAS(p, old, c.next(old, kind))
	}
	panic("sim: register implements neither LLSC nor CASer")
}

// next computes the request's target value, wrapping within the
// figure's value capacity.
func (c *cellRun) next(old uint64, kind ReqKind) uint64 {
	if kind == ReqDec {
		return (old + c.maxVal) % (c.maxVal + 1)
	}
	return (old + 1) % (c.maxVal + 1)
}

// tryEliminate attempts dispatch-level elimination: an inc and a dec on
// the same key cancel without touching the register. The caller either
// matches a parked complementary offer (both requests complete) or — if
// the key's slot is free — parks its own offer for elimWindow ticks.
// Floor-holder serialization makes the table access safe.
func (c *cellRun) tryEliminate(p int, r Request) bool {
	if o := c.elim.offers[r.Key]; o != nil {
		if !o.taken && o.kind != r.Kind {
			o.taken = true
			delete(c.elim.offers, r.Key)
			c.met.IncProc(p, obs.CtrSimEliminated)
			return true
		}
		return false // slot busy with a same-kind offer
	}
	my := &elimOffer{kind: r.Kind}
	c.elim.offers[r.Key] = my
	c.eng.sleepUntil(p, c.eng.vtOf(p)+elimWindow)
	if my.taken {
		c.met.IncProc(p, obs.CtrSimEliminated)
		return true
	}
	if c.elim.offers[r.Key] == my {
		delete(c.elim.offers, r.Key)
	}
	return false
}

// harvest summarizes the finished cell.
func (c *cellRun) harvest() CellResult {
	snap := c.met.Snapshot()
	completed := snap[obs.CtrSimCompleted]
	res := CellResult{
		CellID:     c.cell,
		Offered:    snap[obs.CtrSimRequests],
		Completed:  completed,
		Eliminated: snap[obs.CtrSimEliminated],
		Restarts:   snap[obs.CtrSimRestarts],
		Ticks:      c.eng.now,
		P99Latency: c.lat.Quantile(0.99),
		P99Retries: c.retries.Quantile(0.99),
		MeanLat:    c.lat.Mean(),
		Counters:   snap.NonZero(),
	}
	res.Score = c.sc.Fitness.score(res, c.sc.Horizon)
	rec := bench.NewRecord(bench.Result{
		Name:    c.sc.Name + "/" + c.cell.String(),
		Workers: c.sc.Procs,
		Ops:     completed,
		// Virtual ticks stand in for nanoseconds: ns_per_op and
		// ops_per_sec read as ticks-per-op and ops-per-megatick.
		Elapsed: time.Duration(c.eng.now),
	}, snap).WithHists(c.retries, c.lat).WithSim(c.sc.Name, c.eng.now)
	res.Bench = &rec
	return res
}

// score applies the weighted multi-objective fitness function
// (docs/SIMULATION.md): throughput in completions per kilotick,
// responsiveness as 1000/(1+p99 latency), and wedge freedom as the
// completion percentage.
func (w Weights) score(r CellResult, horizon uint64) float64 {
	if r.Offered == 0 {
		return 0
	}
	tp := float64(r.Completed) / float64(horizon) * 1000
	lat := 1000 / (1 + float64(r.P99Latency))
	wedge := 100 * float64(r.Completed) / float64(r.Offered)
	return w.Throughput*tp + w.P99Latency*lat + w.WedgeFree*wedge
}
