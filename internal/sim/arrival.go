package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// ReqKind is a request's operation: "inc" and "dec" mutate the keyed
// counter (and may eliminate against each other); "read" reads it.
type ReqKind string

const (
	ReqInc  ReqKind = "inc"
	ReqDec  ReqKind = "dec"
	ReqRead ReqKind = "read"
)

// Request is one client request in the sampled arrival trace: processor
// Proc asks for Kind on Key at virtual tick At. Requests execute in
// trace order per processor (open-loop: a late-running processor queues
// its backlog, and queueing delay is part of the measured latency).
type Request struct {
	Proc int     `json:"proc"`
	At   uint64  `json:"at"`
	Kind ReqKind `json:"kind"`
	Key  int     `json:"key"`
}

// SampleTrace draws the scenario's full arrival trace: per-processor
// arrival times from the processor's client-class inter-arrival
// distribution (modulated by the diurnal phases), request kinds from the
// mix, and keys from the hotspot distribution. The trace is a pure
// function of the scenario (including its seed): every sweep cell runs
// the identical trace, so cells are paired comparisons. Returned flat,
// ordered by (Proc, At).
func SampleTrace(sc Scenario) ([]Request, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var trace []Request
	proc := 0
	for ci, class := range sc.Clients {
		for i := 0; i < class.Procs; i++ {
			rng := rand.New(rand.NewSource(sc.Seed ^ int64(proc)*0x9E3779B9 ^ int64(ci)<<32))
			trace = append(trace, sampleProc(sc, proc, class.Arrival, rng)...)
			proc++
		}
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("sim: scenario %q offers no requests (rate × horizon too small)", sc.Name)
	}
	return trace, nil
}

// sampleProc draws one processor's arrivals over [0, Horizon).
func sampleProc(sc Scenario, proc int, a Arrival, rng *rand.Rand) []Request {
	var reqs []Request
	t := 0.0
	horizon := float64(sc.Horizon)
	for {
		dt := interarrival(a, rng)
		// Diurnal modulation: divide the gap by the load multiplier in
		// force at the provisional arrival instant.
		if len(sc.Phases) > 0 {
			seg := int(t / horizon * float64(len(sc.Phases)))
			if seg >= len(sc.Phases) {
				seg = len(sc.Phases) - 1
			}
			dt /= sc.Phases[seg]
		}
		t += dt
		if t >= horizon {
			return reqs
		}
		reqs = append(reqs, Request{
			Proc: proc,
			At:   uint64(t),
			Kind: sampleKind(sc.Mix, rng),
			Key:  sampleKey(sc, rng),
		})
	}
}

// interarrival draws one inter-arrival gap in ticks, mean 1/Rate.
func interarrival(a Arrival, rng *rand.Rand) float64 {
	mean := 1 / a.Rate
	switch a.Process {
	case "poisson":
		return rng.ExpFloat64() * mean
	case "uniform":
		return rng.Float64() * 2 * mean
	case "gamma":
		// Shape k, scale chosen so the mean is 1/Rate.
		return gammaSample(a.Shape, rng) * mean / a.Shape
	case "weibull":
		// Inverse transform; scale normalized by Γ(1+1/k) so the mean is
		// 1/Rate regardless of shape.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		lambda := mean / math.Gamma(1+1/a.Shape)
		return lambda * math.Pow(-math.Log(u), 1/a.Shape)
	}
	panic("sim: unvalidated arrival process " + a.Process)
}

// gammaSample draws Gamma(k, 1) via Marsaglia–Tsang (2000), with the
// standard boost for k < 1.
func gammaSample(k float64, rng *rand.Rand) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(k+1, rng) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func sampleKind(m Mix, rng *rand.Rand) ReqKind {
	total := m.Inc + m.Dec + m.Read
	u := rng.Float64() * total
	switch {
	case u < m.Inc:
		return ReqInc
	case u < m.Inc+m.Dec:
		return ReqDec
	default:
		return ReqRead
	}
}

func sampleKey(sc Scenario, rng *rand.Rand) int {
	if sc.Keys == 1 {
		return 0
	}
	if rng.Float64() < sc.Hot {
		return 0
	}
	return 1 + rng.Intn(sc.Keys-1)
}

// splitTrace splits a flat (Proc, At)-ordered trace into per-processor
// streams, each in arrival order.
func splitTrace(trace []Request, procs int) [][]Request {
	per := make([][]Request, procs)
	for _, r := range trace {
		per[r.Proc] = append(per[r.Proc], r)
	}
	return per
}
