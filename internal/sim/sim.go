// Package sim is a deterministic, CPU-only discrete-event simulator for
// the repository's non-blocking primitives: it drives the step-clock
// machine (internal/machine) in virtual time, offers it synthetic client
// load from pluggable arrival processes (Poisson/Gamma/Weibull,
// multi-client, diurnally phased), and sweeps the contention-management
// matrix — policy (none/spin/backoff/adaptive) × dispatch-level
// elimination × register sharding — scoring every cell with a weighted
// multi-objective fitness function (throughput, p99 latency, wedge
// freedom) and reporting the winning configuration with per-dimension
// counterfactual deltas.
//
// Determinism is the product: the same Scenario and seed produce a
// byte-identical llsc-sim/v1 report on every run (no wall clocks, no map
// iteration, one runnable goroutine at a time), which is what makes the
// golden-report, replay-equivalence, and metamorphic ranking tests
// possible. Time is measured in "ticks": every machine operation costs
// one tick, and contention-policy waits cost their spin-unit length in
// ticks (via contention.Policy.SetSleeper), so a tick is roughly the
// tens-of-nanoseconds scale of one shared-memory operation.
//
// See docs/SIMULATION.md for the scenario schema, the fitness function,
// and the replay workflow; cmd/llscsim is the CLI.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/contention"
	"repro/internal/stress"
)

// Scenario is one simulated workload plus the sweep to run over it. The
// JSON field names double as the YAML keys (docs/SIMULATION.md).
type Scenario struct {
	// Name identifies the scenario in reports and file names.
	Name string `json:"name"`
	// Figure selects the register implementation the service runs on:
	// fig3 (CAS), fig4 (LL/SC from CAS), fig5 (LL/SC from RLL/RSC),
	// fig6 (W-word LL/SC), fig7 (bounded tags). See stress.DefaultRegisters.
	Figure string `json:"figure"`
	// Procs is the number of simulated processors; each is one client.
	Procs int `json:"procs"`
	// Keys is the size of the keyed-counter keyspace.
	Keys int `json:"keys"`
	// Hot is the fraction of requests aimed at key 0 (the hotspot); the
	// remainder spread uniformly over the other keys.
	Hot float64 `json:"hot"`
	// Horizon is the arrival window in ticks. Requests arrive in
	// [0, Horizon); execution may run on to 2×Horizon (the hard stop)
	// before the backlog is abandoned.
	Horizon uint64 `json:"horizon"`
	// Seed drives every RNG stream in the run (arrival sampling, machine
	// spurious failures, policy jitter).
	Seed int64 `json:"seed"`
	// Spurious is the machine's spurious RSC failure probability.
	Spurious float64 `json:"spurious,omitempty"`
	// Mix weighs the request kinds (normalized internally).
	Mix Mix `json:"mix"`
	// Clients partitions the processors into arrival classes.
	Clients []ClientSpec `json:"clients"`
	// Phases, when non-empty, modulates arrival rates across the horizon:
	// the horizon divides into len(Phases) equal segments and a request's
	// inter-arrival time is divided by the segment's multiplier (2.0 =
	// twice the load). Models diurnal load.
	Phases []float64 `json:"phases,omitempty"`
	// Crash, when non-nil, layers a crash storm over the run.
	Crash *CrashSpec `json:"crash,omitempty"`
	// RecordTrace embeds the sampled arrival trace in the report, making
	// it replayable (Replay) at the cost of report size.
	RecordTrace bool `json:"record_trace,omitempty"`
	// Sweep is the grid of configurations to score.
	Sweep Sweep `json:"sweep"`
	// Fitness weighs the scoring objectives.
	Fitness Weights `json:"fitness"`
}

// Mix weighs the three request kinds. Weights need not sum to 1; they
// are normalized. Inc and dec requests mutate (and may eliminate
// against each other); reads only read.
type Mix struct {
	Inc  float64 `json:"inc"`
	Dec  float64 `json:"dec"`
	Read float64 `json:"read"`
}

// ClientSpec assigns an arrival process to a contiguous block of
// processors. Blocks are assigned in order: the first spec covers procs
// [0, Procs), the next the following block, and so on.
type ClientSpec struct {
	Procs   int     `json:"procs"`
	Arrival Arrival `json:"arrival"`
}

// Arrival describes one inter-arrival distribution. Rate is in requests
// per tick (mean inter-arrival = 1/Rate ticks). Shape applies to gamma
// (k; k=1 is Poisson-like, k>1 smoother) and weibull (k; k<1 is
// heavy-tailed/bursty) and is ignored for poisson and uniform.
type Arrival struct {
	Process string  `json:"process"` // poisson | gamma | weibull | uniform
	Rate    float64 `json:"rate"`
	Shape   float64 `json:"shape,omitempty"`
}

// ArrivalProcesses lists the accepted Arrival.Process names.
func ArrivalProcesses() []string { return []string{"poisson", "gamma", "weibull", "uniform"} }

// CrashSpec configures the crash storm: the last Victims processors are
// killed at their AtOp-th machine operation of each incarnation, Budget
// times each (fault.CrashRestart), and take RestartDelay ticks to come
// back.
type CrashSpec struct {
	Victims      int    `json:"victims"`
	AtOp         int    `json:"at_op"`
	Budget       int    `json:"budget"`
	RestartDelay uint64 `json:"restart_delay"`
}

// Sweep is the configuration grid: the cross product of contention
// policies, elimination on/off, and stripe counts. Base and Max, when
// non-zero, inject tuned backoff-window parameters into the backoff and
// adaptive policies (contention.FromParams) instead of their defaults.
type Sweep struct {
	Policies    []string `json:"policies"`
	Elimination []bool   `json:"elimination"`
	Shards      []int    `json:"shards"`
	Base        int      `json:"base,omitempty"`
	Max         int      `json:"max,omitempty"`
}

// Weights weighs the fitness objectives; see docs/SIMULATION.md for the
// exact formula. All weights must be non-negative and at least one
// positive.
type Weights struct {
	// Throughput weighs completed requests per kilotick.
	Throughput float64 `json:"throughput"`
	// P99Latency weighs responsiveness: 1000/(1+p99 latency in ticks).
	P99Latency float64 `json:"p99_latency"`
	// WedgeFree weighs the completion ratio: 100·completed/offered.
	WedgeFree float64 `json:"wedge_free"`
}

// maxProcs bounds scenario size: the engine parks one goroutine per
// simulated processor, and the figure constructions are Θ(N)–Θ(N²) in
// space, so "thousands of processors" scenarios should be sharded into
// multiple scenarios rather than one giant machine.
const (
	maxProcs   = 64
	maxKeys    = 1024
	maxShards  = 16
	minHorizon = 100
	maxHorizon = 100_000_000
)

// Validate checks the scenario against the documented schema bounds,
// returning the first violation.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario name must be non-empty")
	}
	if !figureKnown(sc.Figure) {
		return fmt.Errorf("sim: unknown figure %q (want one of %v)", sc.Figure, figureNames())
	}
	if sc.Procs < 2 || sc.Procs > maxProcs {
		return fmt.Errorf("sim: procs must be in [2,%d], got %d", maxProcs, sc.Procs)
	}
	if sc.Keys < 1 || sc.Keys > maxKeys {
		return fmt.Errorf("sim: keys must be in [1,%d], got %d", maxKeys, sc.Keys)
	}
	if sc.Hot < 0 || sc.Hot > 1 {
		return fmt.Errorf("sim: hot must be in [0,1], got %v", sc.Hot)
	}
	if sc.Horizon < minHorizon || sc.Horizon > maxHorizon {
		return fmt.Errorf("sim: horizon must be in [%d,%d] ticks, got %d", minHorizon, maxHorizon, sc.Horizon)
	}
	if sc.Spurious < 0 || sc.Spurious >= 1 {
		return fmt.Errorf("sim: spurious must be in [0,1), got %v", sc.Spurious)
	}
	if sc.Mix.Inc < 0 || sc.Mix.Dec < 0 || sc.Mix.Read < 0 || sc.Mix.Inc+sc.Mix.Dec+sc.Mix.Read <= 0 {
		return fmt.Errorf("sim: mix weights must be non-negative and sum positive, got %+v", sc.Mix)
	}
	if len(sc.Clients) == 0 {
		return fmt.Errorf("sim: at least one client class is required")
	}
	total := 0
	for i, c := range sc.Clients {
		if c.Procs < 1 {
			return fmt.Errorf("sim: client %d: procs must be positive, got %d", i, c.Procs)
		}
		total += c.Procs
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("sim: client %d: %w", i, err)
		}
	}
	if total != sc.Procs {
		return fmt.Errorf("sim: client procs sum to %d, want procs = %d", total, sc.Procs)
	}
	for i, ph := range sc.Phases {
		if ph <= 0 {
			return fmt.Errorf("sim: phase %d multiplier must be positive, got %v", i, ph)
		}
	}
	if c := sc.Crash; c != nil {
		if c.Victims < 1 || c.Victims >= sc.Procs {
			return fmt.Errorf("sim: crash victims must be in [1,procs), got %d", c.Victims)
		}
		if c.AtOp < 1 {
			return fmt.Errorf("sim: crash at_op must be at least 1, got %d", c.AtOp)
		}
		if c.Budget < 0 {
			return fmt.Errorf("sim: crash budget must be non-negative, got %d", c.Budget)
		}
		if c.RestartDelay < 1 {
			return fmt.Errorf("sim: crash restart_delay must be at least 1 tick, got %d", c.RestartDelay)
		}
	}
	if err := sc.Sweep.validate(); err != nil {
		return err
	}
	w := sc.Fitness
	if w.Throughput < 0 || w.P99Latency < 0 || w.WedgeFree < 0 || w.Throughput+w.P99Latency+w.WedgeFree <= 0 {
		return fmt.Errorf("sim: fitness weights must be non-negative and sum positive, got %+v", w)
	}
	return nil
}

func (a Arrival) validate() error {
	switch a.Process {
	case "poisson", "uniform":
	case "gamma", "weibull":
		if a.Shape <= 0 {
			return fmt.Errorf("arrival process %q needs a positive shape, got %v", a.Process, a.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival process %q (want one of %v)", a.Process, ArrivalProcesses())
	}
	if a.Rate <= 0 || a.Rate > 1 {
		return fmt.Errorf("arrival rate must be in (0,1] requests/tick, got %v", a.Rate)
	}
	return nil
}

func (s Sweep) validate() error {
	if len(s.Policies) == 0 || len(s.Elimination) == 0 || len(s.Shards) == 0 {
		return fmt.Errorf("sim: sweep needs at least one value per dimension (policies/elimination/shards)")
	}
	for _, name := range s.Policies {
		if _, err := contention.ParseKind(name); err != nil {
			return fmt.Errorf("sim: sweep: %w", err)
		}
	}
	for _, n := range s.Shards {
		if n < 1 || n > maxShards {
			return fmt.Errorf("sim: sweep shards must be in [1,%d], got %d", maxShards, n)
		}
	}
	if s.Base < 0 || s.Max < 0 {
		return fmt.Errorf("sim: sweep base/max must be non-negative, got %d/%d", s.Base, s.Max)
	}
	return nil
}

// figureSpec resolves a figure name to its stress register builder.
func figureSpec(name string) (stress.RegisterSpec, bool) {
	for _, spec := range stress.DefaultRegisters() {
		if spec.Name == name {
			return spec, true
		}
	}
	return stress.RegisterSpec{}, false
}

func figureKnown(name string) bool { _, ok := figureSpec(name); return ok }

func figureNames() []string {
	regs := stress.DefaultRegisters()
	names := make([]string, len(regs))
	for i, r := range regs {
		names[i] = r.Name
	}
	return names
}

// Builtin returns a named built-in scenario. The built-ins are the
// committed experiment suite (EXPERIMENTS.md §E12) and the smoke gate.
func Builtin(name string) (Scenario, bool) {
	for _, sc := range builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Builtins lists the built-in scenario names in stable order.
func Builtins() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, sc := range bs {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

func builtins() []Scenario {
	return []Scenario{
		{
			// smoke: tiny and fully swept — the CI golden-report gate.
			Name: "smoke", Figure: "fig5", Procs: 4, Keys: 4, Hot: 0.5,
			Horizon: 4000, Seed: 1,
			Mix:         Mix{Inc: 0.45, Dec: 0.35, Read: 0.2},
			Clients:     []ClientSpec{{Procs: 4, Arrival: Arrival{Process: "poisson", Rate: 0.01}}},
			RecordTrace: true,
			Sweep:       Sweep{Policies: []string{"none", "backoff"}, Elimination: []bool{false, true}, Shards: []int{1, 2}},
			Fitness:     Weights{Throughput: 1, P99Latency: 0.5, WedgeFree: 2},
		},
		{
			// hotspot: 90% of the load on one key — the regime elimination
			// and striping exist for.
			Name: "hotspot", Figure: "fig5", Procs: 8, Keys: 16, Hot: 0.9,
			Horizon: 20000, Seed: 1, Spurious: 0.01,
			Mix:         Mix{Inc: 0.45, Dec: 0.45, Read: 0.1},
			Clients:     []ClientSpec{{Procs: 8, Arrival: Arrival{Process: "poisson", Rate: 0.045}}},
			RecordTrace: true,
			Sweep:       Sweep{Policies: []string{"none", "spin", "backoff", "adaptive"}, Elimination: []bool{false, true}, Shards: []int{1, 4}},
			Fitness:     Weights{Throughput: 1, P99Latency: 1, WedgeFree: 1},
		},
		{
			// diurnal: a six-phase day with a 10× swing between trough and
			// peak, smoother-than-Poisson arrivals (gamma k=2).
			Name: "diurnal", Figure: "fig5", Procs: 8, Keys: 8, Hot: 0.3,
			Horizon: 24000, Seed: 1,
			Mix:         Mix{Inc: 0.4, Dec: 0.4, Read: 0.2},
			Clients:     []ClientSpec{{Procs: 8, Arrival: Arrival{Process: "gamma", Rate: 0.03, Shape: 2}}},
			Phases:      []float64{0.2, 0.5, 1.5, 2.0, 1.0, 0.4},
			RecordTrace: true,
			Sweep:       Sweep{Policies: []string{"none", "backoff", "adaptive"}, Elimination: []bool{false, true}, Shards: []int{1, 2}},
			Fitness:     Weights{Throughput: 1, P99Latency: 1, WedgeFree: 1},
		},
		{
			// bursty: a steady background tenant plus a heavy-tailed one
			// (weibull k=0.5: long silences, dense bursts).
			Name: "bursty", Figure: "fig5", Procs: 8, Keys: 8, Hot: 0.6,
			Horizon: 20000, Seed: 1,
			Mix: Mix{Inc: 0.45, Dec: 0.35, Read: 0.2},
			Clients: []ClientSpec{
				{Procs: 6, Arrival: Arrival{Process: "poisson", Rate: 0.02}},
				{Procs: 2, Arrival: Arrival{Process: "weibull", Rate: 0.08, Shape: 0.5}},
			},
			RecordTrace: true,
			Sweep:       Sweep{Policies: []string{"none", "spin", "backoff", "adaptive"}, Elimination: []bool{false, true}, Shards: []int{1, 2}},
			Fitness:     Weights{Throughput: 1, P99Latency: 1.5, WedgeFree: 1},
		},
		{
			// crashstorm: two victims die repeatedly mid-operation on the
			// bounded-tag figure (the one with real reclamation work);
			// fitness is wedge-heavy because surviving is the point.
			Name: "crashstorm", Figure: "fig7", Procs: 6, Keys: 4, Hot: 0.5,
			Horizon: 20000, Seed: 1, Spurious: 0.05,
			Mix:         Mix{Inc: 0.4, Dec: 0.4, Read: 0.2},
			Clients:     []ClientSpec{{Procs: 6, Arrival: Arrival{Process: "poisson", Rate: 0.02}}},
			Crash:       &CrashSpec{Victims: 2, AtOp: 60, Budget: 4, RestartDelay: 300},
			RecordTrace: true,
			Sweep:       Sweep{Policies: []string{"none", "adaptive"}, Elimination: []bool{false}, Shards: []int{1}},
			Fitness:     Weights{Throughput: 0.5, P99Latency: 0.5, WedgeFree: 3},
		},
	}
}
