package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSmokeReport pins the smoke scenario's full llsc-sim/v1
// report byte for byte. It fails on any behavioral drift — engine
// scheduling, arrival sampling, scoring, serialization — so deliberate
// changes must regenerate the golden file:
//
//	LLSC_SIM_UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenSmokeReport
//
// and the regenerated report reviewed in the diff like any other code.
func TestGoldenSmokeReport(t *testing.T) {
	sc, ok := Builtin("smoke")
	if !ok {
		t.Fatal("smoke builtin missing")
	}
	rep, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_smoke.json")
	if os.Getenv("LLSC_SIM_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with LLSC_SIM_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) string {
			hi := i + 80
			if hi > len(b) {
				hi = len(b)
			}
			if lo > len(b) {
				return ""
			}
			return string(b[lo:hi])
		}
		t.Fatalf("smoke report drifted from the golden file at byte %d:\n got: …%s…\nwant: …%s…\n(if intentional, regenerate with LLSC_SIM_UPDATE_GOLDEN=1)",
			i, ctx(got), ctx(want))
	}
	// The golden file is itself a readable, replayable report.
	loaded, err := ReadReportFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := CompareCells(loaded, replayed); len(diffs) != 0 {
		t.Fatalf("golden report does not replay to itself:\n%v", diffs)
	}
}
