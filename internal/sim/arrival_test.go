package sim

import (
	"reflect"
	"testing"
)

// arrivalScenario offers enough load for distributional checks.
func arrivalScenario() Scenario {
	sc := validScenario()
	sc.Procs = 4
	sc.Clients = []ClientSpec{{Procs: 4, Arrival: Arrival{Process: "poisson", Rate: 0.05}}}
	sc.Horizon = 20000
	sc.Keys = 8
	return sc
}

func TestSampleTraceDeterministic(t *testing.T) {
	sc := arrivalScenario()
	a, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario sampled two different traces")
	}
	sc.Seed++
	c, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds sampled identical traces")
	}
}

func TestSampleTraceShape(t *testing.T) {
	sc := arrivalScenario()
	trace, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	perProc := make([]int, sc.Procs)
	var lastAt uint64
	lastProc := -1
	for i, r := range trace {
		if r.Proc < 0 || r.Proc >= sc.Procs {
			t.Fatalf("request %d has proc %d out of range", i, r.Proc)
		}
		if r.At >= sc.Horizon {
			t.Fatalf("request %d arrives at %d, past the horizon %d", i, r.At, sc.Horizon)
		}
		if r.Key < 0 || r.Key >= sc.Keys {
			t.Fatalf("request %d has key %d out of range", i, r.Key)
		}
		if r.Kind != ReqInc && r.Kind != ReqDec && r.Kind != ReqRead {
			t.Fatalf("request %d has kind %q", i, r.Kind)
		}
		// Flat trace is (Proc, At)-ordered.
		if r.Proc == lastProc && r.At < lastAt {
			t.Fatalf("request %d out of order: proc %d at %d after %d", i, r.Proc, r.At, lastAt)
		}
		if r.Proc < lastProc {
			t.Fatalf("request %d: proc %d after proc %d", i, r.Proc, lastProc)
		}
		lastProc, lastAt = r.Proc, r.At
		perProc[r.Proc]++
	}
	// Poisson at rate 0.05 over 20000 ticks ⇒ ~1000 arrivals per proc;
	// a factor-of-two band is far outside sampling noise.
	for p, n := range perProc {
		if n < 500 || n > 2000 {
			t.Errorf("proc %d offered %d requests, want ~1000", p, n)
		}
	}
}

// TestSampleTraceProcessses checks every distribution samples, keeps
// its configured mean rate, and differs per shape where it should.
func TestSampleTraceProcesses(t *testing.T) {
	for _, a := range []Arrival{
		{Process: "poisson", Rate: 0.05},
		{Process: "uniform", Rate: 0.05},
		{Process: "gamma", Rate: 0.05, Shape: 2},
		{Process: "gamma", Rate: 0.05, Shape: 0.5},
		{Process: "weibull", Rate: 0.05, Shape: 0.5},
		{Process: "weibull", Rate: 0.05, Shape: 2},
	} {
		sc := arrivalScenario()
		sc.Clients = []ClientSpec{{Procs: 4, Arrival: a}}
		trace, err := SampleTrace(sc)
		if err != nil {
			t.Fatalf("%+v: %v", a, err)
		}
		// Mean inter-arrival 20 ticks ⇒ ~4000 requests total. Heavy-tailed
		// weibull k=0.5 has high variance, so the band is wide.
		if n := len(trace); n < 2000 || n > 8000 {
			t.Errorf("%+v: offered %d requests, want ~4000", a, n)
		}
	}
}

func TestSampleTraceHotspot(t *testing.T) {
	sc := arrivalScenario()
	sc.Hot = 0.9
	trace, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, r := range trace {
		if r.Key == 0 {
			hot++
		}
	}
	if frac := float64(hot) / float64(len(trace)); frac < 0.85 || frac > 0.95 {
		t.Errorf("hot-key fraction %.3f, want ~0.9", frac)
	}
}

func TestSampleTraceMix(t *testing.T) {
	sc := arrivalScenario()
	sc.Mix = Mix{Inc: 1, Dec: 1} // no reads
	trace, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ReqKind]int{}
	for _, r := range trace {
		counts[r.Kind]++
	}
	if counts[ReqRead] != 0 {
		t.Errorf("mix with zero read weight sampled %d reads", counts[ReqRead])
	}
	ratio := float64(counts[ReqInc]) / float64(counts[ReqDec])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("inc/dec ratio %.3f, want ~1 for equal weights", ratio)
	}
}

// TestSampleTracePhases checks diurnal modulation: a segment with a 4×
// multiplier receives about 4× the arrivals of a 1× segment.
func TestSampleTracePhases(t *testing.T) {
	sc := arrivalScenario()
	sc.Phases = []float64{1, 4}
	trace, err := SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	half := sc.Horizon / 2
	lo, hi := 0, 0
	for _, r := range trace {
		if r.At < half {
			lo++
		} else {
			hi++
		}
	}
	if ratio := float64(hi) / float64(lo); ratio < 3 || ratio > 5 {
		t.Errorf("peak/trough arrival ratio %.2f, want ~4", ratio)
	}
}

func TestSampleTraceEmpty(t *testing.T) {
	sc := validScenario()
	sc.Horizon = minHorizon
	sc.Clients[0].Arrival.Rate = 0.0000001
	if _, err := SampleTrace(sc); err == nil {
		t.Fatal("expected an error for a trace with no requests")
	}
}

func TestSplitTrace(t *testing.T) {
	trace := []Request{
		{Proc: 0, At: 1}, {Proc: 0, At: 5}, {Proc: 2, At: 3},
	}
	per := splitTrace(trace, 3)
	if len(per[0]) != 2 || len(per[1]) != 0 || len(per[2]) != 1 {
		t.Fatalf("split sizes %d/%d/%d, want 2/0/1", len(per[0]), len(per[1]), len(per[2]))
	}
}
