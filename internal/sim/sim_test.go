package sim

import (
	"strings"
	"testing"
)

// validScenario is a minimal scenario that passes Validate; the
// rejection table mutates one field at a time from here.
func validScenario() Scenario {
	return Scenario{
		Name: "t", Figure: "fig5", Procs: 2, Keys: 2, Hot: 0.5,
		Horizon: 1000, Seed: 7,
		Mix:     Mix{Inc: 1, Dec: 1, Read: 1},
		Clients: []ClientSpec{{Procs: 2, Arrival: Arrival{Process: "poisson", Rate: 0.05}}},
		Sweep:   Sweep{Policies: []string{"none"}, Elimination: []bool{false}, Shards: []int{1}},
		Fitness: Weights{Throughput: 1, P99Latency: 1, WedgeFree: 1},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	sc := validScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string // substring of the error
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }, "name"},
		{"unknown figure", func(s *Scenario) { s.Figure = "fig9" }, "figure"},
		{"procs too small", func(s *Scenario) { s.Procs = 1 }, "procs"},
		{"procs too large", func(s *Scenario) { s.Procs = maxProcs + 1 }, "procs"},
		{"keys zero", func(s *Scenario) { s.Keys = 0 }, "keys"},
		{"hot negative", func(s *Scenario) { s.Hot = -0.1 }, "hot"},
		{"hot above one", func(s *Scenario) { s.Hot = 1.1 }, "hot"},
		{"horizon too short", func(s *Scenario) { s.Horizon = minHorizon - 1 }, "horizon"},
		{"horizon too long", func(s *Scenario) { s.Horizon = maxHorizon + 1 }, "horizon"},
		{"spurious certain", func(s *Scenario) { s.Spurious = 1 }, "spurious"},
		{"mix all zero", func(s *Scenario) { s.Mix = Mix{} }, "mix"},
		{"mix negative", func(s *Scenario) { s.Mix.Inc = -1 }, "mix"},
		{"no clients", func(s *Scenario) { s.Clients = nil }, "client"},
		{"client procs zero", func(s *Scenario) { s.Clients[0].Procs = 0 }, "procs"},
		{"client procs mismatch", func(s *Scenario) { s.Clients[0].Procs = 3 }, "sum"},
		{"unknown process", func(s *Scenario) { s.Clients[0].Arrival.Process = "pareto" }, "arrival process"},
		{"rate zero", func(s *Scenario) { s.Clients[0].Arrival.Rate = 0 }, "rate"},
		{"rate above one", func(s *Scenario) { s.Clients[0].Arrival.Rate = 1.5 }, "rate"},
		{"gamma without shape", func(s *Scenario) {
			s.Clients[0].Arrival = Arrival{Process: "gamma", Rate: 0.05}
		}, "shape"},
		{"weibull without shape", func(s *Scenario) {
			s.Clients[0].Arrival = Arrival{Process: "weibull", Rate: 0.05}
		}, "shape"},
		{"phase zero", func(s *Scenario) { s.Phases = []float64{1, 0} }, "phase"},
		{"crash no victims", func(s *Scenario) {
			s.Crash = &CrashSpec{Victims: 0, AtOp: 5, Budget: 1, RestartDelay: 10}
		}, "victims"},
		{"crash all victims", func(s *Scenario) {
			s.Crash = &CrashSpec{Victims: 2, AtOp: 5, Budget: 1, RestartDelay: 10}
		}, "victims"},
		{"crash at_op zero", func(s *Scenario) {
			s.Crash = &CrashSpec{Victims: 1, AtOp: 0, Budget: 1, RestartDelay: 10}
		}, "at_op"},
		{"crash negative budget", func(s *Scenario) {
			s.Crash = &CrashSpec{Victims: 1, AtOp: 5, Budget: -1, RestartDelay: 10}
		}, "budget"},
		{"crash no restart delay", func(s *Scenario) {
			s.Crash = &CrashSpec{Victims: 1, AtOp: 5, Budget: 1, RestartDelay: 0}
		}, "restart_delay"},
		{"sweep no policies", func(s *Scenario) { s.Sweep.Policies = nil }, "sweep"},
		{"sweep bad policy", func(s *Scenario) { s.Sweep.Policies = []string{"mutex"} }, "mutex"},
		{"sweep shard zero", func(s *Scenario) { s.Sweep.Shards = []int{0} }, "shards"},
		{"sweep shard too large", func(s *Scenario) { s.Sweep.Shards = []int{maxShards + 1} }, "shards"},
		{"sweep negative base", func(s *Scenario) { s.Sweep.Base = -1 }, "base"},
		{"fitness all zero", func(s *Scenario) { s.Fitness = Weights{} }, "fitness"},
		{"fitness negative", func(s *Scenario) { s.Fitness.WedgeFree = -1 }, "fitness"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuiltinsValidate(t *testing.T) {
	names := Builtins()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	for _, name := range names {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtins lists %q but Builtin cannot find it", name)
		}
		if sc.Name != name {
			t.Errorf("Builtin(%q) returned scenario named %q", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %q does not validate: %v", name, err)
		}
		if !sc.RecordTrace {
			t.Errorf("built-in %q does not record its trace; built-ins must be replayable", name)
		}
	}
	if _, ok := Builtin("no-such-scenario"); ok {
		t.Error("Builtin returned ok for an unknown name")
	}
}

func TestSweepGridOrder(t *testing.T) {
	s := Sweep{
		Policies:    []string{"none", "backoff"},
		Elimination: []bool{false, true},
		Shards:      []int{1, 2},
	}
	grid := s.grid()
	if len(grid) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(grid))
	}
	// Policy-major, then elimination, then shards: the report's cell
	// order is part of the byte-determinism contract.
	want := []string{
		"none-noelim-s1", "none-noelim-s2", "none-elim-s1", "none-elim-s2",
		"backoff-noelim-s1", "backoff-noelim-s2", "backoff-elim-s1", "backoff-elim-s2",
	}
	for i, id := range grid {
		if id.String() != want[i] {
			t.Errorf("grid[%d] = %s, want %s", i, id.String(), want[i])
		}
	}
}
