package sim

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

func cellByID(t *testing.T, rep *Report, id string) CellResult {
	t.Helper()
	for _, c := range rep.Cells {
		if c.CellID.String() == id {
			return c
		}
	}
	t.Fatalf("report has no cell %q", id)
	return CellResult{}
}

// TestEliminationPairsComplements: under the hotspot regime the
// elimination cells pair off inc/dec complements (hundreds of them on
// one stripe), and the non-elimination cells never do.
func TestEliminationPairsComplements(t *testing.T) {
	rep := hotspotAt(t, 1)
	for _, c := range rep.Cells {
		if !c.Elim && c.Eliminated != 0 {
			t.Errorf("cell %v eliminated %d requests with elimination off", c.CellID, c.Eliminated)
		}
	}
	if c := cellByID(t, rep, "backoff-elim-s1"); c.Eliminated < 100 {
		t.Errorf("backoff-elim-s1 eliminated only %d requests under a 90%% hotspot; expected hundreds", c.Eliminated)
	}
	// The load is heavy but within capacity: every cell drains fully.
	for _, c := range rep.Cells {
		if c.Completed != c.Offered {
			t.Errorf("cell %v completed %d of %d", c.CellID, c.Completed, c.Offered)
		}
	}
}

// TestShardingRelievesHotspot: the sharding dimension is why the
// hotspot sweep exists — 4 stripes cut the contention-driven p99
// latency by an order of magnitude on the unstriped baseline.
func TestShardingRelievesHotspot(t *testing.T) {
	rep := hotspotAt(t, 1)
	s1 := cellByID(t, rep, "none-noelim-s1")
	s4 := cellByID(t, rep, "none-noelim-s4")
	if s4.P99Latency*4 > s1.P99Latency {
		t.Errorf("p99 latency %d (s4) vs %d (s1): striping did not relieve the hotspot", s4.P99Latency, s1.P99Latency)
	}
	if s4.Score <= s1.Score {
		t.Errorf("score %.3f (s4) <= %.3f (s1): fitness did not reward striping", s4.Score, s1.Score)
	}
	if s1.P99Retries <= s4.P99Retries {
		t.Errorf("p99 retries %d (s1) vs %d (s4): striping should cut retry storms", s1.P99Retries, s4.P99Retries)
	}
}

// TestCrashStormSurvives: victims die mid-operation (with kills landing
// inside recovery too), yet every offered request completes and the
// report accounts for every incarnation.
func TestCrashStormSurvives(t *testing.T) {
	sc, ok := Builtin("crashstorm")
	if !ok {
		t.Fatal("crashstorm builtin missing")
	}
	rep, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantRestarts := uint64(sc.Crash.Victims * sc.Crash.Budget)
	for _, c := range rep.Cells {
		if c.Restarts != wantRestarts {
			t.Errorf("cell %v saw %d restarts, want %d (victims × budget)", c.CellID, c.Restarts, wantRestarts)
		}
		if c.Completed != c.Offered {
			t.Errorf("cell %v wedged: completed %d of %d", c.CellID, c.Completed, c.Offered)
		}
		if c.Counters["fault_inj_crash"] != wantRestarts {
			t.Errorf("cell %v recorded %d crash injections, want %d", c.CellID, c.Counters["fault_inj_crash"], wantRestarts)
		}
	}
}

// TestOverloadAbandonsBacklog: offered load far beyond the machine's
// one-op-per-tick capacity hits the hard stop, and the unserved backlog
// is charged against wedge freedom rather than silently dropped.
func TestOverloadAbandonsBacklog(t *testing.T) {
	sc := validScenario()
	sc.Procs = 4
	sc.Keys = 1
	sc.Hot = 1
	sc.Horizon = 500
	sc.Clients = []ClientSpec{{Procs: 4, Arrival: Arrival{Process: "uniform", Rate: 1}}}
	rep, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Completed >= c.Offered {
		t.Fatalf("overload completed %d of %d; expected an abandoned backlog", c.Completed, c.Offered)
	}
	if c.Ticks > 2*sc.Horizon+minHorizon {
		t.Errorf("run went %d ticks past the hard stop %d", c.Ticks, 2*sc.Horizon)
	}
	// The wedge-freedom term must see the loss.
	if ratio := float64(c.Completed) / float64(c.Offered); ratio > 0.95 {
		t.Errorf("completion ratio %.3f too high to exercise the wedge penalty", ratio)
	}
}

// TestScoreRecomputes pins the published fitness formula: the reported
// score is reproducible from the reported raw measures alone, so
// downstream tooling can re-rank cells under different weights.
func TestScoreRecomputes(t *testing.T) {
	rep := hotspotAt(t, 1)
	w := rep.Scenario.Fitness
	for _, c := range rep.Cells {
		tp := float64(c.Completed) / float64(rep.Scenario.Horizon) * 1000
		lat := 1000 / (1 + float64(c.P99Latency))
		wedge := 100 * float64(c.Completed) / float64(c.Offered)
		want := w.Throughput*tp + w.P99Latency*lat + w.WedgeFree*wedge
		if math.Abs(c.Score-want) > 1e-9 {
			t.Errorf("cell %v score %.6f, formula gives %.6f", c.CellID, c.Score, want)
		}
	}
}

// TestCellBenchRecords: every cell embeds a valid llsc-bench/v1 record
// flagged as virtual-time, so sim cells flow through the same
// downstream tooling as wall-clock benchmarks.
func TestCellBenchRecords(t *testing.T) {
	rep := hotspotAt(t, 1)
	for _, c := range rep.Cells {
		b := c.Bench
		if b == nil {
			t.Fatalf("cell %v has no bench record", c.CellID)
		}
		if b.Schema != bench.Schema {
			t.Errorf("cell %v bench schema %q, want %q", c.CellID, b.Schema, bench.Schema)
		}
		if b.Scenario != rep.Scenario.Name || b.VirtualTicks != c.Ticks {
			t.Errorf("cell %v bench sim fields %q/%d, want %q/%d",
				c.CellID, b.Scenario, b.VirtualTicks, rep.Scenario.Name, c.Ticks)
		}
		if b.Ops != c.Completed || uint64(b.ElapsedNs) != c.Ticks {
			t.Errorf("cell %v bench ops/elapsed %d/%d, want %d/%d",
				c.CellID, b.Ops, b.ElapsedNs, c.Completed, c.Ticks)
		}
		if b.Counters["sim_requests"] != c.Offered {
			t.Errorf("cell %v bench counters disagree with the cell: %d vs %d",
				c.CellID, b.Counters["sim_requests"], c.Offered)
		}
		if b.Latency == nil || b.Retries == nil {
			t.Errorf("cell %v bench record lacks latency/retry histograms", c.CellID)
		}
	}
}

// TestDecisionsCounterfactuals: every counterfactual is a real cell of
// the grid differing from the winner in exactly the named dimension,
// with delta = winner − alternative.
func TestDecisionsCounterfactuals(t *testing.T) {
	rep := hotspotAt(t, 1)
	d := rep.Decisions
	if len(d.Counterfactuals) == 0 {
		t.Fatal("no counterfactuals in a multi-dimension sweep")
	}
	byID := map[CellID]CellResult{}
	for _, c := range rep.Cells {
		byID[c.CellID] = c
	}
	win, ok := byID[d.Winner]
	if !ok {
		t.Fatalf("winner %v is not a grid cell", d.Winner)
	}
	if win.Score != d.Score {
		t.Errorf("winner score %.6f, decisions say %.6f", win.Score, d.Score)
	}
	for _, c := range rep.Cells {
		if c.Score > win.Score {
			t.Errorf("cell %v outscores the declared winner (%.3f > %.3f)", c.CellID, c.Score, win.Score)
		}
	}
	for _, cf := range d.Counterfactuals {
		alt, ok := byID[cf.Cell]
		if !ok {
			t.Errorf("counterfactual %v is not a grid cell", cf.Cell)
			continue
		}
		if cf.Score != alt.Score || cf.Delta != win.Score-alt.Score {
			t.Errorf("counterfactual %v score/delta %.6f/%.6f inconsistent with cells", cf.Cell, cf.Score, cf.Delta)
		}
		diffs := 0
		if cf.Cell.Policy != d.Winner.Policy {
			diffs++
			if cf.Dimension != "policy" {
				t.Errorf("counterfactual %v differs in policy but is labelled %q", cf.Cell, cf.Dimension)
			}
		}
		if cf.Cell.Elim != d.Winner.Elim {
			diffs++
			if cf.Dimension != "elimination" {
				t.Errorf("counterfactual %v differs in elimination but is labelled %q", cf.Cell, cf.Dimension)
			}
		}
		if cf.Cell.Shards != d.Winner.Shards {
			diffs++
			if cf.Dimension != "shards" {
				t.Errorf("counterfactual %v differs in shards but is labelled %q", cf.Cell, cf.Dimension)
			}
		}
		if diffs != 1 {
			t.Errorf("counterfactual %v differs from the winner in %d dimensions, want exactly 1", cf.Cell, diffs)
		}
	}
}

// TestSimCountersRegistered: the sim_* counters the engine emits are
// first-class obs counters (named, snapshot-visible), so they surface
// through the whole observability stack.
func TestSimCountersRegistered(t *testing.T) {
	want := map[obs.Counter]string{
		obs.CtrSimRequests:   "sim_requests",
		obs.CtrSimCompleted:  "sim_completed",
		obs.CtrSimEliminated: "sim_eliminated",
		obs.CtrSimRestarts:   "sim_restarts",
	}
	for ctr, name := range want {
		if got := ctr.String(); got != name {
			t.Errorf("counter %d named %q, want %q", ctr, got, name)
		}
		if !obs.IsCounterName(name) {
			t.Errorf("%q is not a registered counter name", name)
		}
	}
}
