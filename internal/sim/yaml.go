package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DecodeFile reads a scenario from a .json, .yaml, or .yml file and
// validates it. YAML support is a dependency-free subset — block
// mappings and sequences by two-space indentation, flow sequences
// ([a, b]), quoted and bare scalars, # comments — which covers the
// scenario schema (docs/SIMULATION.md has examples). Unknown keys are
// rejected in both formats, so typos fail loudly rather than silently
// running a default.
func DecodeFile(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		sc, err = decodeStrictJSON(data)
	case ".yaml", ".yml":
		sc, err = decodeYAML(data)
	default:
		return Scenario{}, fmt.Errorf("sim: %s: unsupported config extension %q (want .json, .yaml, or .yml)", path, ext)
	}
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	return sc, nil
}

// decodeStrictJSON unmarshals a scenario rejecting unknown fields.
func decodeStrictJSON(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// decodeYAML parses the YAML subset into a generic tree, then round-
// trips it through JSON into the Scenario struct so both formats share
// one schema (the json tags) and one strictness rule.
func decodeYAML(data []byte) (Scenario, error) {
	tree, err := parseYAML(data)
	if err != nil {
		return Scenario{}, err
	}
	js, err := json.Marshal(tree)
	if err != nil {
		return Scenario{}, err
	}
	return decodeStrictJSON(js)
}

// yamlLine is one significant source line: its indentation depth and
// content, with comments and blank lines already dropped.
type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || trimmed == "---" {
			continue
		}
		if strings.Contains(line[:len(line)-len(trimmed)], "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, yamlLine{
			indent: len(line) - len(trimmed),
			text:   strings.TrimRight(trimmed, " \r"),
			num:    i + 1,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// stripComment removes a trailing # comment, honoring quoted strings.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i, r := range line {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || line[i-1] == ' ' {
				return line[:i]
			}
		}
	}
	return line
}

// parseBlock parses the mapping or sequence whose entries sit at indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		l := p.lines[p.pos]
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml line %d: sequence entry inside a mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = parseScalar(rest)
			continue
		}
		// No inline value: a nested block follows, or the value is null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			child, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = child
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		l := p.lines[p.pos]
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			break
		}
		item := strings.TrimLeft(strings.TrimPrefix(l.text, "-"), " ")
		if item == "" {
			// "-" alone: the entry is the nested block on following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			child, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, child)
			continue
		}
		if isMapEntry(item) {
			// "- key: value": the entry is a mapping whose first key shares
			// the dash's line. Rewrite the line as that key at its true
			// column, so subsequent aligned keys join the same mapping.
			inner := indent + len(l.text) - len(item)
			p.lines[p.pos] = yamlLine{indent: inner, text: item, num: l.num}
			child, err := p.parseMapping(inner)
			if err != nil {
				return nil, err
			}
			seq = append(seq, child)
			continue
		}
		p.pos++
		seq = append(seq, parseScalar(item))
	}
	return seq, nil
}

// splitKey splits "key: value" / "key:"; the key may be quoted.
func splitKey(l yamlLine) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", l.num, l.text)
	}
	if i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml line %d: missing space after %q:", l.num, l.text[:i])
	}
	key = strings.TrimSpace(l.text[:i])
	if k, ok := unquote(key); ok {
		key = k
	}
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: empty key", l.num)
	}
	return key, strings.TrimSpace(l.text[i+1:]), nil
}

// isMapEntry reports whether a sequence item is "key: value" rather
// than a scalar that merely contains a colon (like a quoted string).
func isMapEntry(item string) bool {
	if item[0] == '"' || item[0] == '\'' || item[0] == '[' {
		return false
	}
	i := strings.Index(item, ":")
	return i > 0 && (i == len(item)-1 || item[i+1] == ' ')
}

// parseScalar interprets one YAML scalar: quoted string, flow sequence,
// null/bool/number, else bare string.
func parseScalar(s string) any {
	if v, ok := unquote(s); ok {
		return v
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		var seq []any
		for _, part := range strings.Split(inner, ",") {
			seq = append(seq, parseScalar(strings.TrimSpace(part)))
		}
		return seq
	}
	switch s {
	case "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func unquote(s string) (string, bool) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u, true
		}
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), true
	}
	return "", false
}
