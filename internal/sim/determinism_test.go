package sim

import (
	"bytes"
	"sync"
	"testing"
)

// hotspotAt memoizes hotspot sweeps by seed: several tests read the
// same report, and a 16-cell sweep is worth sharing.
var (
	hotspotMu   sync.Mutex
	hotspotReps = map[int64]*Report{}
)

func hotspotAt(t *testing.T, seed int64) *Report {
	t.Helper()
	hotspotMu.Lock()
	defer hotspotMu.Unlock()
	if rep, ok := hotspotReps[seed]; ok {
		return rep
	}
	sc, ok := Builtin("hotspot")
	if !ok {
		t.Fatal("hotspot builtin missing")
	}
	sc.Seed = seed
	rep, err := RunSweep(sc)
	if err != nil {
		t.Fatalf("hotspot sweep (seed %d): %v", seed, err)
	}
	hotspotReps[seed] = rep
	return rep
}

// TestReportByteDeterminism is the core contract: the same scenario
// (same seed) produces a byte-identical report, including the crash-
// storm scenario whose recovery path is the most schedule-sensitive.
func TestReportByteDeterminism(t *testing.T) {
	for _, name := range []string{"smoke", "crashstorm"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := Builtin(name)
			if !ok {
				t.Fatalf("builtin %q missing", name)
			}
			a, err := RunSweep(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSweep(sc)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := a.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			bb, err := b.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, bb) {
				t.Fatalf("two runs of %q produced different bytes (%d vs %d)", name, len(ab), len(bb))
			}
		})
	}
}

func TestSeedChangesReport(t *testing.T) {
	sc, _ := Builtin("smoke")
	a, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := a.Marshal()
	bb, _ := b.Marshal()
	if bytes.Equal(ab, bb) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestReplayReproducesScores is the acceptance gate for --replay: a
// report's embedded trace, re-executed, reproduces every cell's
// fitness-relevant outcome exactly. It goes through the serialized
// form, as the CLI does.
func TestReplayReproducesScores(t *testing.T) {
	orig := hotspotAt(t, 1)
	data, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := CompareCells(orig, replayed); len(diffs) != 0 {
		t.Fatalf("replay diverged:\n%v", diffs)
	}
}

func TestReplayRequiresTrace(t *testing.T) {
	sc, _ := Builtin("smoke")
	sc.RecordTrace = false
	rep, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(rep); err == nil {
		t.Fatal("Replay accepted a report with no embedded trace")
	}
}

func TestCompareCellsDetectsDivergence(t *testing.T) {
	rep := hotspotAt(t, 1)
	forged := *rep
	forged.Cells = append([]CellResult(nil), rep.Cells...)
	forged.Cells[0].Score += 1
	if diffs := CompareCells(rep, &forged); len(diffs) != 1 {
		t.Fatalf("got %d mismatches, want 1: %v", len(diffs), diffs)
	}
}

// TestMetamorphicRankingStability: scores vary with the seed, but the
// sweep's conclusions should not. Across seeds, the winner's identity
// is stable, and any pair of cells decisively separated (score gap
// above tolerance) at every seed agrees on the order everywhere.
func TestMetamorphicRankingStability(t *testing.T) {
	const tolerance = 20.0 // decisive-gap threshold, in fitness points
	seeds := []int64{1, 2, 3}
	reps := make([]*Report, len(seeds))
	for i, seed := range seeds {
		reps[i] = hotspotAt(t, seed)
	}
	base := reps[0]
	for _, rep := range reps[1:] {
		if rep.Decisions.Winner != base.Decisions.Winner {
			t.Errorf("winner flipped with the seed: %v vs %v",
				base.Decisions.Winner, rep.Decisions.Winner)
		}
	}
	// The winning configuration in the hotspot regime is striping: the
	// load concentrates on one key, and spreading it across 4 stripes
	// cuts p99 latency by an order of magnitude.
	if w := base.Decisions.Winner; w.Shards != 4 {
		t.Errorf("hotspot winner %v does not shard; sharding is the hotspot remedy", w)
	}
	for i := 0; i < len(base.Cells); i++ {
		for j := i + 1; j < len(base.Cells); j++ {
			decisive := true
			for _, rep := range reps {
				gap := rep.Cells[i].Score - rep.Cells[j].Score
				if gap < 0 {
					gap = -gap
				}
				if gap <= tolerance {
					decisive = false
					break
				}
			}
			if !decisive {
				continue
			}
			sign := base.Cells[i].Score > base.Cells[j].Score
			for k, rep := range reps[1:] {
				if (rep.Cells[i].Score > rep.Cells[j].Score) != sign {
					t.Errorf("decisive pair %v vs %v flips order at seed %d",
						base.Cells[i].CellID, base.Cells[j].CellID, seeds[k+1])
				}
			}
		}
	}
}
