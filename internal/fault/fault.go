// Package fault provides deterministic, composable fault plans for the
// simulated machine in internal/machine — the adversaries Moir's theorems
// quantify over but uniform random injection never exercises.
//
// The paper's progress claims are adversarial: Theorems 1, 3, 4 and 5
// promise termination under ANY pattern of finitely many spurious RSC
// failures per operation, and every theorem promises that an SC fails only
// if another SC succeeds — no matter how writes are timed. The built-in
// machine.Config.SpuriousFailProb models benign hardware (independent
// per-op coin flips); this package models the hard cases:
//
//   - Burst: a failure storm — every RSC of one processor fails
//     spuriously for a window of attempts (cache-invalidation storms, or
//     the R4000 erratum of SC failing under interrupt load).
//   - Interference: targeted reservation stealing — an adversary silently
//     rewrites the very word a processor is about to RSC, so the RSC
//     fails for real. Budget-bounded, because an unbounded such adversary
//     defeats any wait-free construction (it performs no successful SCs
//     of its own, so the paper's accounting does not apply to it).
//   - Crash: a processor stops mid-algorithm at a chosen operation index
//     and never runs again (until released for teardown). Non-blocking
//     algorithms shrug; footnote 1's lock-based construction wedges.
//   - TagPressure: machine-wide periodic interference that drives SC
//     failure rates up, churning Figure 7's bounded tag space through its
//     recycling feedback as fast as possible.
//
// Plans are deterministic given the per-processor operation sequences (no
// ambient randomness), so any failure found under a serialized scheduler
// replays exactly. Every plan counts its injections (Injected) and can
// mirror them into an obs.Metrics via SetMetrics, which puts
// fault_inj_* counters alongside the algorithm counters in metrics and
// JSON bench records.
package fault

import (
	"fmt"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Stats counts the faults a plan actually injected.
type Stats struct {
	// Spurious is the number of RSCs forced to fail spuriously.
	Spurious uint64 `json:"spurious,omitempty"`
	// Interference is the number of silent adversarial rewrites.
	Interference uint64 `json:"interference,omitempty"`
	// Stalls is the number of operations blocked by a crash/stall.
	Stalls uint64 `json:"stalls,omitempty"`
	// Crashes is the number of kill-style crashes injected (incarnations
	// killed via machine.FaultInjection.Crash, restartable with
	// machine.Restart — unlike Stalls, which block forever).
	Crashes uint64 `json:"crashes,omitempty"`
}

// Add returns the component-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Spurious:     s.Spurious + t.Spurious,
		Interference: s.Interference + t.Interference,
		Stalls:       s.Stalls + t.Stalls,
		Crashes:      s.Crashes + t.Crashes,
	}
}

// Total returns the total number of injected faults.
func (s Stats) Total() uint64 { return s.Spurious + s.Interference + s.Stalls + s.Crashes }

// Plan is a machine.FaultPlan that can describe itself and report what it
// injected. All implementations in this package are safe for concurrent
// use by distinct processors.
type Plan interface {
	machine.FaultPlan
	// Name identifies the plan and its parameters, for reports.
	Name() string
	// Injected returns the faults injected so far.
	Injected() Stats
	// SetMetrics attaches an optional metrics sink (nil disables, the
	// default); injections are mirrored to the fault_inj_* counters.
	// Attach before the machine runs.
	SetMetrics(*obs.Metrics)
}

// stats is the shared injection-accounting core embedded in every plan.
type stats struct {
	spurious  atomic.Uint64
	interfere atomic.Uint64
	stalls    atomic.Uint64
	crashes   atomic.Uint64
	m         *obs.Metrics
}

func (s *stats) SetMetrics(m *obs.Metrics) { s.m = m }

func (s *stats) Injected() Stats {
	return Stats{
		Spurious:     s.spurious.Load(),
		Interference: s.interfere.Load(),
		Stalls:       s.stalls.Load(),
		Crashes:      s.crashes.Load(),
	}
}

func (s *stats) countSpurious(proc int) {
	s.spurious.Add(1)
	s.m.IncProc(proc, obs.CtrFaultInjSpurious)
}

func (s *stats) countInterfere(proc int) {
	s.interfere.Add(1)
	s.m.IncProc(proc, obs.CtrFaultInjInterference)
}

func (s *stats) countStall(proc int) {
	s.stalls.Add(1)
	s.m.IncProc(proc, obs.CtrFaultInjStall)
}

func (s *stats) countCrash(proc int) {
	s.crashes.Add(1)
	s.m.IncProc(proc, obs.CtrFaultInjCrash)
}

// Burst fails a window of one processor's RSC attempts spuriously: attempts
// skip, skip+1, ..., skip+length-1 (0-based, counted per processor) all
// fail. This is the paper's worst benign adversary — a storm of spurious
// failures — concentrated on one victim. Because the window is finite, the
// wait-freedom bounds (Theorems 1, 3) require every operation to finish
// once the storm passes.
type Burst struct {
	stats
	proc   int
	skip   uint64
	length uint64
	rscs   atomic.Uint64
}

// NewBurst builds a Burst failing RSC attempts [skip, skip+length) of
// processor proc.
func NewBurst(proc, skip, length int) *Burst {
	if proc < 0 {
		panic("fault: Burst proc must be non-negative")
	}
	if skip < 0 || length < 0 {
		panic("fault: Burst skip and length must be non-negative")
	}
	return &Burst{proc: proc, skip: uint64(skip), length: uint64(length)}
}

// Name implements Plan.
func (b *Burst) Name() string {
	return fmt.Sprintf("burst(proc=%d,skip=%d,len=%d)", b.proc, b.skip, b.length)
}

// BeforeOp implements machine.FaultPlan.
func (b *Burst) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	if proc != b.proc || op != machine.OpRSC {
		return machine.FaultInjection{}
	}
	n := b.rscs.Add(1) - 1 // this RSC's 0-based index
	if n < b.skip || n >= b.skip+b.length {
		return machine.FaultInjection{}
	}
	b.countSpurious(proc)
	return machine.FaultInjection{SpuriousRSC: true}
}

// AnyProc targets every processor where a plan takes a processor filter.
const AnyProc = -1

// Interference steals reservations: immediately before each targeted RSC
// it silently rewrites the RSC's word, so the RSC fails for REAL (the
// machine classifies it as interference, not spurious — exactly what a
// competing writer causes). Every `every`-th targeted RSC is hit, at most
// `budget` times in total. The budget matters: the adversary performs no
// successful SC of its own, so Theorems 1-5's "an SC fails only if another
// SC succeeds" accounting does not cover it, and an unbounded version
// would starve any of the paper's constructions.
type Interference struct {
	stats
	proc    int // AnyProc or a specific target
	every   uint64
	budget0 int64 // configured budget, for Name
	budget  atomic.Int64
	rscs    atomic.Uint64
}

// NewInterference builds an Interference hitting every `every`-th RSC of
// processor proc (AnyProc for all processors), at most budget times.
func NewInterference(proc, every, budget int) *Interference {
	if every < 1 {
		panic("fault: Interference every must be at least 1")
	}
	if budget < 0 {
		panic("fault: Interference budget must be non-negative")
	}
	i := &Interference{proc: proc, every: uint64(every), budget0: int64(budget)}
	i.budget.Store(int64(budget))
	return i
}

// Name implements Plan.
func (i *Interference) Name() string {
	target := "any"
	if i.proc != AnyProc {
		target = fmt.Sprintf("%d", i.proc)
	}
	return fmt.Sprintf("interference(proc=%s,every=%d,budget=%d)", target, i.every, i.budget0)
}

// BeforeOp implements machine.FaultPlan.
func (i *Interference) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	if op != machine.OpRSC || (i.proc != AnyProc && proc != i.proc) {
		return machine.FaultInjection{}
	}
	if i.rscs.Add(1)%i.every != 0 {
		return machine.FaultInjection{}
	}
	if i.budget.Add(-1) < 0 {
		return machine.FaultInjection{}
	}
	i.countInterfere(proc)
	return machine.FaultInjection{Interfere: true}
}

// Crash stops one processor dead: from its atOp-th shared-memory operation
// (0-based) on, the processor blocks inside the machine and never executes
// another instruction until Release. This models a processor failing (or
// being descheduled indefinitely) mid-algorithm — possibly mid-SC, holding
// announce slots, reservations, or a half-installed Figure 6 header. The
// paper's constructions guarantee the other N-1 processors keep completing
// operations; a lock-based construction whose holder crashes does not.
//
// Crash plans block BeforeOp, so they are for free-running machines
// (Config.Scheduler == nil); under a serializing scheduler the blocked
// step would stall the whole controller.
type Crash struct {
	stats
	proc     int
	atOp     uint64
	ops      atomic.Uint64
	released chan struct{}
}

// NewCrash builds a Crash stopping processor proc at its atOp-th
// shared-memory operation.
func NewCrash(proc, atOp int) *Crash {
	if proc < 0 {
		panic("fault: Crash proc must be non-negative")
	}
	if atOp < 0 {
		panic("fault: Crash atOp must be non-negative")
	}
	return &Crash{proc: proc, atOp: uint64(atOp), released: make(chan struct{})}
}

// Name implements Plan.
func (c *Crash) Name() string {
	return fmt.Sprintf("crash(proc=%d,at=%d)", c.proc, c.atOp)
}

// BeforeOp implements machine.FaultPlan.
func (c *Crash) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	if proc != c.proc {
		return machine.FaultInjection{}
	}
	n := c.ops.Add(1) - 1
	if n < c.atOp {
		return machine.FaultInjection{}
	}
	select {
	case <-c.released:
		return machine.FaultInjection{} // post-release teardown: run freely
	default:
	}
	c.countStall(proc)
	<-c.released
	return machine.FaultInjection{}
}

// Crashed reports whether the processor has hit its crash point.
func (c *Crash) Crashed() bool { return c.stalls.Load() > 0 }

// Release lets the crashed processor run again, for teardown: the blocked
// operation (and all subsequent ones) proceed normally. Idempotent.
func (c *Crash) Release() {
	select {
	case <-c.released:
	default:
		close(c.released)
	}
}

// CrashRestart kills one processor repeatedly: each incarnation of the
// victim dies at its atOp-th shared-memory operation (0-based, counted per
// incarnation), up to budget kills in total. Unlike Crash, which wedges
// its victim forever inside BeforeOp, CrashRestart uses the machine's
// kill-style crash — the victim's goroutine receives a machine.CrashPanic,
// the in-flight operation never executes, and the driver is expected to
// recover the panic, call machine.Restart, run the constructions' Recover
// paths, and resume. This is the chaos-soak adversary: the process
// population churns while the other processors keep running.
//
// Determinism: per-incarnation operation counting restarts at zero after
// each kill, so a given (seed, plan) soak replays the same crash points
// provided the victim's instruction stream is deterministic.
type CrashRestart struct {
	stats
	proc    int
	atOp    uint64
	budget0 int64
	budget  atomic.Int64
	ops     atomic.Uint64
}

// NewCrashRestart builds a CrashRestart killing processor proc at the
// atOp-th operation of each incarnation, at most budget times.
func NewCrashRestart(proc, atOp, budget int) *CrashRestart {
	if proc < 0 {
		panic("fault: CrashRestart proc must be non-negative")
	}
	if atOp < 1 {
		// The 0th op of a fresh incarnation is the first thing a restarted
		// process does: killing there would loop restart->kill forever.
		panic("fault: CrashRestart atOp must be at least 1")
	}
	if budget < 0 {
		panic("fault: CrashRestart budget must be non-negative")
	}
	c := &CrashRestart{proc: proc, atOp: uint64(atOp), budget0: int64(budget)}
	c.budget.Store(int64(budget))
	return c
}

// Name implements Plan.
func (c *CrashRestart) Name() string {
	return fmt.Sprintf("crashrestart(proc=%d,at=%d,budget=%d)", c.proc, c.atOp, c.budget0)
}

// BeforeOp implements machine.FaultPlan.
func (c *CrashRestart) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	if proc != c.proc {
		return machine.FaultInjection{}
	}
	if c.ops.Add(1) < c.atOp {
		return machine.FaultInjection{}
	}
	if c.budget.Add(-1) < 0 {
		return machine.FaultInjection{}
	}
	c.ops.Store(0) // next incarnation counts from scratch
	c.countCrash(proc)
	return machine.FaultInjection{Crash: true}
}

// Kills returns how many incarnations the plan has killed so far.
func (c *CrashRestart) Kills() uint64 { return c.crashes.Load() }

// TagPressure is machine-wide periodic interference: every `every`-th RSC
// on the whole machine is preceded by a silent rewrite of its word, up to
// `budget` injections. Against Figure 7 workloads that keep LL-SC
// sequences outstanding, the elevated SC failure rate churns the bounded
// tag space through its recycling feedback (observable as tag_recycle) —
// pressure that must never let a (tag, cnt, pid) triple recur while a
// process could still compare against it.
type TagPressure struct {
	Interference
}

// NewTagPressure builds a TagPressure plan hitting every `every`-th RSC
// machine-wide, at most budget times.
func NewTagPressure(every, budget int) *TagPressure {
	t := &TagPressure{}
	t.proc = AnyProc
	if every < 1 {
		panic("fault: TagPressure every must be at least 1")
	}
	if budget < 0 {
		panic("fault: TagPressure budget must be non-negative")
	}
	t.every = uint64(every)
	t.budget0 = int64(budget)
	t.budget.Store(int64(budget))
	return t
}

// Name implements Plan.
func (t *TagPressure) Name() string {
	return fmt.Sprintf("tagpressure(every=%d,budget=%d)", t.every, t.budget0)
}

// Composed fans BeforeOp out to several plans and merges their
// injections (logical OR). Sub-plan injection counts stay with the
// sub-plans; Injected sums them.
type Composed struct {
	plans []Plan
	name  string
}

// Compose combines plans into one. With no arguments it returns a plan
// that injects nothing.
func Compose(plans ...Plan) *Composed {
	name := "compose("
	for i, p := range plans {
		if i > 0 {
			name += ","
		}
		name += p.Name()
	}
	return &Composed{plans: plans, name: name + ")"}
}

// Name implements Plan.
func (c *Composed) Name() string { return c.name }

// Plans returns the sub-plans, in composition order — so a driver holding
// a plan built by ParsePlan can find components needing lifecycle calls
// (Crash.Release for teardown) without re-parsing the spec.
func (c *Composed) Plans() []Plan { return c.plans }

// BeforeOp implements machine.FaultPlan.
func (c *Composed) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	var out machine.FaultInjection
	for _, p := range c.plans {
		inj := p.BeforeOp(proc, op, word)
		out.SpuriousRSC = out.SpuriousRSC || inj.SpuriousRSC
		out.Interfere = out.Interfere || inj.Interfere
		out.Crash = out.Crash || inj.Crash
	}
	return out
}

// Injected implements Plan: the sum over sub-plans.
func (c *Composed) Injected() Stats {
	var s Stats
	for _, p := range c.plans {
		s = s.Add(p.Injected())
	}
	return s
}

// SetMetrics implements Plan, attaching m to every sub-plan.
func (c *Composed) SetMetrics(m *obs.Metrics) {
	for _, p := range c.plans {
		p.SetMetrics(m)
	}
}
