package fault

import (
	"strings"
	"testing"
)

// TestParsePlanComponents pins the single-component specs: each stable
// name builds its plan, and the parameters thread through.
func TestParsePlanComponents(t *testing.T) {
	params := PlanParams{Procs: 4, BurstLen: 7, CrashAt: 3, KillBudget: 2}
	wantName := map[string]string{"kill": "crashrestart"} // kill builds a CrashRestart
	for _, name := range PlanNames() {
		p, err := ParsePlan(name, params)
		if err != nil {
			t.Fatalf("ParsePlan(%q) error: %v", name, err)
		}
		if p == nil {
			t.Fatalf("ParsePlan(%q) returned nil plan", name)
		}
		want := name
		if w, ok := wantName[name]; ok {
			want = w
		}
		if !strings.Contains(p.Name(), want) {
			t.Errorf("ParsePlan(%q).Name() = %q; does not identify the component", name, p.Name())
		}
	}
	if p, err := ParsePlan("none", params); err != nil || p != nil {
		t.Errorf("ParsePlan(none) = (%v, %v), want (nil, nil)", p, err)
	}
}

// TestParsePlanCompose: "burst∘crash" builds one composed plan whose name
// names both components.
func TestParsePlanCompose(t *testing.T) {
	p, err := ParsePlan("burst"+PlanSeparator+"crash", PlanParams{Procs: 2, CrashAt: 12})
	if err != nil {
		t.Fatalf("ParsePlan(burst∘crash) error: %v", err)
	}
	name := p.Name()
	if !strings.Contains(name, "burst") || !strings.Contains(name, "crash") {
		t.Errorf("composed plan name %q does not name both components", name)
	}
	if _, ok := p.(*Composed); !ok {
		t.Errorf("composed spec built %T, want *Composed", p)
	}
}

// TestParsePlanRejections: duplicates, unknown names, none-in-compose,
// empty specs, and parameter misuse all fail loudly with actionable
// messages.
func TestParsePlanRejections(t *testing.T) {
	ok := PlanParams{Procs: 2}
	tests := []struct {
		name    string
		spec    string
		params  PlanParams
		wantSub string
	}{
		{"duplicate", "burst" + PlanSeparator + "burst", ok, "duplicate"},
		{"duplicate split by third", "burst" + PlanSeparator + "crash" + PlanSeparator + "burst", ok, "duplicate"},
		{"unknown", "meteor", ok, "unknown plan component"},
		{"unknown inside compose", "burst" + PlanSeparator + "meteor", ok, "unknown plan component"},
		{"none inside compose", "none" + PlanSeparator + "burst", ok, "empty plan"},
		{"empty", "", ok, "empty plan spec"},
		{"empty component", "burst" + PlanSeparator, ok, "unknown plan component"},
		{"crash with no procs", "crash", PlanParams{}, "crash victim"},
		{"negative burst", "burst", PlanParams{Procs: 1, BurstLen: -1}, "non-negative"},
		{"negative crash-at", "crash", PlanParams{Procs: 1, CrashAt: -1}, "non-negative"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParsePlan(tc.spec, tc.params)
			if err == nil {
				t.Fatalf("ParsePlan(%q, %+v) = %v, want error", tc.spec, tc.params, p)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("ParsePlan(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}
