package fault

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

func TestBurstFailsExactlyTheWindow(t *testing.T) {
	plan := NewBurst(0, 2, 3) // RSC attempts 2,3,4 of proc 0 fail
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(0)
	var outcomes []bool
	for i := 0; i < 8; i++ {
		p.RLL(w)
		outcomes = append(outcomes, p.RSC(w, uint64(i+1)))
	}
	want := []bool{true, true, false, false, false, true, true, true}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("RSC outcomes = %v, want %v", outcomes, want)
		}
	}
	if got := plan.Injected(); got.Spurious != 3 || got.Interference != 0 || got.Stalls != 0 {
		t.Fatalf("Injected = %+v, want exactly 3 spurious", got)
	}
	// The victim's machine stats agree: injected failures are spurious.
	if s := m.Stats(); s.RSCSpurious != 3 {
		t.Fatalf("machine spurious = %d, want 3", s.RSCSpurious)
	}
}

func TestBurstTargetsOnlyItsProcessor(t *testing.T) {
	plan := NewBurst(1, 0, 100)
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	p0 := m.Proc(0)
	w := m.NewWord(0)
	for i := 0; i < 10; i++ {
		p0.RLL(w)
		if !p0.RSC(w, uint64(i)) {
			t.Fatalf("proc 0's RSC %d failed under a plan targeting proc 1", i)
		}
	}
	if got := plan.Injected().Total(); got != 0 {
		t.Fatalf("Injected.Total = %d, want 0", got)
	}
}

func TestBurstBoundedStormPreservesWaitFreedom(t *testing.T) {
	// Theorem 3's shape: RVar.SC retries through the whole storm and
	// completes right after it ends, having consumed exactly len extra
	// loops.
	plan := NewBurst(0, 0, 7)
	met := obs.NewWithStripes(1)
	plan.SetMetrics(met)
	m := machine.MustNew(machine.Config{Procs: 1, FaultPlan: plan})
	v, err := core.NewRVar(m, word.MustLayout(32), 5)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	val, keep := v.LL(p)
	if val != 5 {
		t.Fatalf("LL = %d, want 5", val)
	}
	if !v.SC(p, keep, 6) {
		t.Fatal("SC failed despite intact logical state (storm is spurious-only)")
	}
	if got := v.Read(p); got != 6 {
		t.Fatalf("value = %d, want 6", got)
	}
	if got := plan.Injected().Spurious; got != 7 {
		t.Fatalf("injected spurious = %d, want 7", got)
	}
	if got := met.Snapshot().Get(obs.CtrFaultInjSpurious); got != 7 {
		t.Fatalf("fault_inj_spurious counter = %d, want 7", got)
	}
}

func TestInterferenceBudgetAndTarget(t *testing.T) {
	plan := NewInterference(0, 1, 4) // every RSC of proc 0, 4 times
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(9)
	fails := 0
	for i := 0; i < 10; i++ {
		p.RLL(w)
		if !p.RSC(w, 9) {
			fails++
		}
	}
	if fails != 4 {
		t.Fatalf("interfered RSC failures = %d, want 4 (budget)", fails)
	}
	if got := plan.Injected(); got.Interference != 4 || got.Spurious != 0 {
		t.Fatalf("Injected = %+v, want exactly 4 interference", got)
	}
	// Interference is a REAL failure at the machine level.
	if s := m.Stats(); s.RSCRealFail != 4 || s.RSCSpurious != 0 {
		t.Fatalf("machine stats = %+v, want 4 real fails and 0 spurious", s)
	}
}

func TestInterferenceEveryNth(t *testing.T) {
	plan := NewInterference(AnyProc, 3, 1000) // every 3rd RSC machine-wide
	m := machine.MustNew(machine.Config{Procs: 1, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(0)
	var outcomes []bool
	for i := 0; i < 9; i++ {
		p.RLL(w)
		outcomes = append(outcomes, p.RSC(w, 0))
	}
	// RSCs are numbered from 1 inside the plan; every 3rd (3,6,9) is hit.
	want := []bool{true, true, false, true, true, false, true, true, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("RSC outcomes = %v, want %v", outcomes, want)
		}
	}
}

func TestCrashStopsProcessorAndReleaseFrees(t *testing.T) {
	plan := NewCrash(1, 3)
	met := obs.NewWithStripes(1)
	plan.SetMetrics(met)
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	w := m.NewWord(0)

	done := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := m.Proc(1)
		n := 0
		for i := 0; i < 10; i++ {
			p.Load(w) // op index i; blocks at i == 3
			n++
		}
		done <- n
	}()

	// The crashed processor must wedge before finishing.
	select {
	case n := <-done:
		t.Fatalf("crashed processor finished %d ops, expected to wedge", n)
	case <-time.After(50 * time.Millisecond):
	}
	if !plan.Crashed() {
		t.Fatal("Crashed() = false while the processor is wedged")
	}
	// The OTHER processor is unaffected.
	p0 := m.Proc(0)
	for i := 0; i < 100; i++ {
		p0.RLL(w)
		if !p0.RSC(w, uint64(i)) {
			t.Fatalf("survivor's RSC %d failed", i)
		}
	}

	plan.Release()
	wg.Wait()
	if n := <-done; n != 10 {
		t.Fatalf("released processor completed %d ops, want 10", n)
	}
	if got := plan.Injected().Stalls; got != 1 {
		t.Fatalf("stalls = %d, want 1 (one blocked op)", got)
	}
	if got := met.Snapshot().Get(obs.CtrFaultInjStall); got != 1 {
		t.Fatalf("fault_inj_stall counter = %d, want 1", got)
	}
	plan.Release() // idempotent
}

func TestCrashRestartKillsEachIncarnation(t *testing.T) {
	// Kill proc 0 at the 3rd op of each incarnation, twice; the third
	// incarnation outlives the budget.
	plan := NewCrashRestart(0, 3, 2)
	met := obs.NewWithStripes(1)
	plan.SetMetrics(met)
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	w := m.NewWord(0)

	// Returns ops completed before the crash, or -1 if no crash happened.
	runIncarnation := func(total int) (completed int) {
		completed = -1
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(machine.CrashPanic); !ok {
					panic(r)
				}
			} else {
				completed = -1
				return
			}
		}()
		p := m.Proc(0)
		for i := 0; i < total; i++ {
			p.Load(w)
			completed = i + 1
		}
		completed = -1 // no crash within total ops
		return
	}

	for gen := 0; gen < 2; gen++ {
		done := runIncarnation(10)
		if done != 2 {
			t.Fatalf("incarnation %d completed %d ops before the kill, want 2 (atOp=3)", gen, done)
		}
		if _, err := m.Restart(0); err != nil {
			t.Fatal(err)
		}
	}
	// Budget exhausted: incarnation 2 runs to completion.
	if done := runIncarnation(10); done != -1 {
		t.Fatalf("post-budget incarnation crashed after %d ops", done)
	}
	if got := plan.Kills(); got != 2 {
		t.Fatalf("Kills = %d, want 2", got)
	}
	if got := plan.Injected(); got.Crashes != 2 || got.Total() != 2 {
		t.Fatalf("Injected = %+v, want exactly 2 crashes", got)
	}
	if got := met.Snapshot().Get(obs.CtrFaultInjCrash); got != 2 {
		t.Fatalf("fault_inj_crash counter = %d, want 2", got)
	}
	// The other processor never sees the plan.
	p1 := m.Proc(1)
	for i := 0; i < 10; i++ {
		p1.RLL(w)
		if !p1.RSC(w, uint64(i)) {
			t.Fatalf("bystander's RSC %d failed", i)
		}
	}
}

func TestComposedCarriesCrash(t *testing.T) {
	plan := Compose(NewBurst(1, 0, 1), NewCrashRestart(0, 1, 1))
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: plan})
	w := m.NewWord(0)
	func() {
		defer func() {
			if _, ok := recover().(machine.CrashPanic); !ok {
				t.Fatal("composed plan dropped the Crash injection")
			}
		}()
		m.Proc(0).Load(w)
	}()
	if got := plan.Injected().Crashes; got != 1 {
		t.Fatalf("composed Crashes = %d, want 1", got)
	}
}

func TestTagPressureDrivesBoundedTagRecycling(t *testing.T) {
	// Figure 7 over RLL/RSC under machine-wide interference: elevated SC
	// failure rates churn the tag queue; values must stay exact.
	plan := NewTagPressure(2, 64)
	m := machine.MustNew(machine.Config{Procs: 1, FaultPlan: plan})
	f, err := core.NewRBoundedFamily(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewWithStripes(1)
	f.SetMetrics(met)
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	for i := 0; i < 200; i++ {
		val, keep, err := v.LL(p)
		if err != nil {
			t.Fatal(err)
		}
		if v.SC(p, keep, val+1) {
			count++
		}
	}
	if got := v.Read(p); got != count {
		t.Fatalf("value = %d, want %d (count of successful SCs)", got, count)
	}
	if got := plan.Injected().Interference; got == 0 {
		t.Fatal("tag pressure injected nothing")
	}
	if got := met.Snapshot().Get(obs.CtrTagRecycle); got == 0 {
		t.Fatal("no tag recycling under pressure (workload too weak)")
	}
}

func TestComposeMergesInjectionsAndStats(t *testing.T) {
	burst := NewBurst(0, 0, 2)
	intf := NewInterference(0, 1, 1)
	plan := Compose(burst, intf)
	m := machine.MustNew(machine.Config{Procs: 1, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(0)
	fails := 0
	for i := 0; i < 6; i++ {
		p.RLL(w)
		if !p.RSC(w, uint64(i)) {
			fails++
		}
	}
	// RSC 1: burst spurious + interference (both injected; spurious wins the
	// classification only if the reservation survives — interference kills
	// it, so the machine reports a real failure but both plans count).
	// RSC 2: burst spurious alone. RSCs 3+: clean.
	if fails != 2 {
		t.Fatalf("failures = %d, want 2", fails)
	}
	got := plan.Injected()
	if got.Spurious != 2 || got.Interference != 1 {
		t.Fatalf("Injected = %+v, want 2 spurious + 1 interference", got)
	}
	if !strings.Contains(plan.Name(), "burst") || !strings.Contains(plan.Name(), "interference") {
		t.Fatalf("Name = %q, want both sub-plan names", plan.Name())
	}
}

func TestPlanNames(t *testing.T) {
	for _, tt := range []struct {
		plan Plan
		want string
	}{
		{NewBurst(1, 2, 3), "burst(proc=1,skip=2,len=3)"},
		{NewInterference(AnyProc, 2, 10), "interference(proc=any,every=2,budget=10)"},
		{NewInterference(3, 1, 5), "interference(proc=3,every=1,budget=5)"},
		{NewCrash(2, 7), "crash(proc=2,at=7)"},
		{NewCrashRestart(1, 4, 3), "crashrestart(proc=1,at=4,budget=3)"},
		{NewTagPressure(4, 9), "tagpressure(every=4,budget=9)"},
	} {
		if got := tt.plan.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"burst negative proc":     func() { NewBurst(-1, 0, 1) },
		"burst negative skip":     func() { NewBurst(0, -1, 1) },
		"interference zero every": func() { NewInterference(0, 0, 1) },
		"interference neg budget": func() { NewInterference(0, 1, -1) },
		"crash negative proc":     func() { NewCrash(-1, 0) },
		"crash negative atOp":     func() { NewCrash(0, -1) },
		"crashrestart zero atOp":  func() { NewCrashRestart(0, 0, 1) },
		"crashrestart neg proc":   func() { NewCrashRestart(-1, 1, 1) },
		"crashrestart neg budget": func() { NewCrashRestart(0, 1, -1) },
		"tagpressure zero every":  func() { NewTagPressure(0, 1) },
		"tagpressure budget neg":  func() { NewTagPressure(1, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid constructor did not panic")
				}
			}()
			fn()
		})
	}
}
