package fault

import (
	"fmt"
	"strings"
)

// PlanSeparator joins component names in a composed plan spec: the spec
// "burst∘crash" builds Compose(Burst, Crash). The function-composition
// glyph keeps specs unambiguous — component names themselves never
// contain it.
const PlanSeparator = "∘"

// PlanParams carries the knobs the named plan components take, so the
// binaries sharing ParsePlan (llscfuzz's -fault-plan, llscd's -chaos)
// expose the same plan vocabulary with their own flag spellings. Zero
// values select the historical defaults from the stress matrix.
type PlanParams struct {
	// Procs is the processor count of the machine (or worker pool) the
	// plan will run against. The crash component kills the highest
	// processor id, Procs-1; a spec containing "crash" with Procs < 1 is
	// rejected because there is nobody to kill.
	Procs int

	// BurstLen is the length of the spurious-failure storm injected by
	// the burst component (0 → 50 attempts).
	BurstLen int

	// CrashAt is the 0-based operation index at which the crash component
	// wedges its victim (and at which each incarnation dies under the
	// kill component). 0 is a real choice (crash on the very first
	// operation), so it is used verbatim — callers wanting the stress
	// matrix's historical victim point pass 12. Negative values are
	// rejected.
	CrashAt int

	// KillBudget bounds how many incarnations the kill component may
	// kill in total (0 → 3). Unlike crash — which wedges its victim
	// forever inside BeforeOp — kill injects machine-style fail-stop
	// crashes the driver restarts, so a budget keeps the run terminating.
	KillBudget int
}

// PlanNames returns the component names ParsePlan accepts, in stable
// order. "none" (the empty plan) is additionally accepted as a complete
// spec but is not a component — composing nothing with something is a
// spec error, not a plan.
func PlanNames() []string { return []string{"burst", "interference", "crash", "kill", "tagpressure"} }

// ParsePlan builds a fault plan from its flag spelling: a single
// component name ("crash"), or several joined by PlanSeparator
// ("burst∘crash") to run under one Compose. The spec "none" yields a nil
// plan (inject nothing) and composes with nothing.
//
// Duplicate components are rejected rather than silently composed: a
// repeated component doubles its injection budget while reporting a
// plan name that reads like the single instance, which made
// "burst∘burst" indistinguishable from "burst" in every report that
// mattered.
func ParsePlan(spec string, p PlanParams) (Plan, error) {
	if spec == "" {
		return nil, fmt.Errorf("fault: empty plan spec (want none, or %s joined by %q)", strings.Join(PlanNames(), PlanSeparator), PlanSeparator)
	}
	parts := strings.Split(spec, PlanSeparator)
	if len(parts) == 1 && parts[0] == "none" {
		return nil, nil
	}
	if p.BurstLen < 0 {
		return nil, fmt.Errorf("fault: burst length must be non-negative, got %d", p.BurstLen)
	}
	if p.CrashAt < 0 {
		return nil, fmt.Errorf("fault: crash operation index must be non-negative, got %d", p.CrashAt)
	}
	seen := make(map[string]bool, len(parts))
	plans := make([]Plan, 0, len(parts))
	for _, part := range parts {
		if seen[part] {
			return nil, fmt.Errorf("fault: duplicate plan component %q in spec %q — a repeated component doubles its budget while reporting as one; state each component once", part, spec)
		}
		seen[part] = true
		pl, err := buildComponent(part, spec, p)
		if err != nil {
			return nil, err
		}
		plans = append(plans, pl)
	}
	if len(plans) == 1 {
		return plans[0], nil
	}
	return Compose(plans...), nil
}

func buildComponent(name, spec string, p PlanParams) (Plan, error) {
	switch name {
	case "burst":
		length := p.BurstLen
		if length == 0 {
			length = 50
		}
		return NewBurst(0, 0, length), nil
	case "interference":
		return NewInterference(AnyProc, 3, 400), nil
	case "crash":
		if p.Procs < 1 {
			return nil, fmt.Errorf("fault: plan %q needs at least 1 processor to pick a crash victim, got %d", spec, p.Procs)
		}
		return NewCrash(p.Procs-1, p.CrashAt), nil
	case "kill":
		if p.Procs < 1 {
			return nil, fmt.Errorf("fault: plan %q needs at least 1 processor to pick a kill victim, got %d", spec, p.Procs)
		}
		if p.KillBudget < 0 {
			return nil, fmt.Errorf("fault: kill budget must be non-negative, got %d", p.KillBudget)
		}
		budget := p.KillBudget
		if budget == 0 {
			budget = 3
		}
		at := p.CrashAt
		if at < 1 {
			at = 1 // CrashRestart counts per incarnation from 1
		}
		return NewCrashRestart(p.Procs-1, at, budget), nil
	case "tagpressure":
		return NewTagPressure(2, 400), nil
	case "none":
		return nil, fmt.Errorf("fault: \"none\" cannot appear in a composed spec %q — it is the empty plan, compose only real components", spec)
	}
	return nil, fmt.Errorf("fault: unknown plan component %q in spec %q (want %s)", name, spec, strings.Join(PlanNames(), ", "))
}
