// Package sched provides deterministic, replayable schedulers for the
// simulated multiprocessor in internal/machine: every shared-memory
// operation becomes a scheduling point, exactly one processor runs at a
// time, and the interleaving is chosen by a pluggable policy (round-robin,
// seeded random walk, or PCT-style priority scheduling).
//
// This is the systematic-testing substrate for the paper's algorithms:
// preemptive Go scheduling explores interleavings haphazardly, while a
// serialized controller explores them *reproducibly* — a failing seed can
// be replayed — and policies like PCT concentrate probability on the
// low-preemption-count schedules where synchronization bugs live.
package sched

import (
	"fmt"
	"math/rand"
	"sync"
)

// Policy picks the next processor to run from the runnable set. ready is
// non-empty and sorted ascending; step counts scheduling decisions made
// so far.
type Policy interface {
	Pick(ready []int, step int) int
}

// RoundRobin cycles through runnable processors in id order.
type RoundRobin struct {
	last int
}

// Pick returns the smallest runnable id greater than the previous choice,
// wrapping around.
func (r *RoundRobin) Pick(ready []int, step int) int {
	for _, id := range ready {
		if id > r.last {
			r.last = id
			return id
		}
	}
	r.last = ready[0]
	return ready[0]
}

// Random picks uniformly among runnable processors using a seeded source:
// same seed, same schedule.
type Random struct {
	rng *rand.Rand
}

// NewRandom builds a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick selects a uniformly random runnable processor.
func (r *Random) Pick(ready []int, step int) int {
	return ready[r.rng.Intn(len(ready))]
}

// PCT is the probabilistic concurrency testing policy (Burckhardt et al.):
// processors get distinct random priorities; the highest-priority runnable
// one runs, except at d randomly chosen step indices where the running
// processor's priority drops below all others. With k processors and n
// steps, each schedule in the d-preemption class is hit with probability
// ≥ 1/(k·n^(d-1)).
type PCT struct {
	rng      *rand.Rand
	prio     map[int]int
	next     int
	changeAt map[int]bool
}

// NewPCT builds a PCT policy for runs of roughly maxSteps scheduling
// points with d priority-change points.
func NewPCT(seed int64, maxSteps, d int) *PCT {
	rng := rand.New(rand.NewSource(seed))
	changeAt := make(map[int]bool, d)
	for i := 0; i < d && maxSteps > 0; i++ {
		changeAt[rng.Intn(maxSteps)] = true
	}
	return &PCT{rng: rng, prio: make(map[int]int), changeAt: changeAt}
}

// Pick runs the highest-priority runnable processor, demoting it first if
// the current step is a change point.
func (p *PCT) Pick(ready []int, step int) int {
	best := -1
	bestPrio := -1 << 62
	for _, id := range ready {
		pr, ok := p.prio[id]
		if !ok {
			pr = p.rng.Intn(1 << 20)
			p.prio[id] = pr
		}
		if pr > bestPrio {
			best, bestPrio = id, pr
		}
	}
	if p.changeAt[step] {
		p.next--
		p.prio[best] = p.next // demote below every future priority
		// Re-pick after the demotion.
		delete(p.changeAt, step)
		return p.Pick(ready, step)
	}
	return best
}

// procState tracks where each processor is in its lifecycle.
type procState int

const (
	stateRunning procState = iota // granted, executing off-controller
	stateReady                    // arrived at a Step, awaiting grant
	stateDone                     // workload finished
)

// Controller serializes processor steps according to a Policy. It
// implements machine.Scheduler; wire it in via machine.Config{Scheduler:}.
type Controller struct {
	n      int
	policy Policy

	mu     sync.Mutex
	cond   *sync.Cond
	state  []procState
	turn   int // processor currently granted, or -1
	steps  int
	closed bool
}

// NewController builds a controller for n processors with the given
// policy.
func NewController(n int, policy Policy) *Controller {
	c := &Controller{n: n, policy: policy, state: make([]procState, n), turn: -1}
	c.cond = sync.NewCond(&c.mu)
	for i := range c.state {
		c.state[i] = stateRunning
	}
	return c
}

// Step implements machine.Scheduler: the processor parks until the policy
// grants it the next shared-memory operation.
func (c *Controller) Step(proc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return // draining: run freely (teardown path)
	}
	c.state[proc] = stateReady
	if c.turn == proc {
		c.turn = -1 // we were the running proc; hand back control
	}
	c.schedule()
	for c.turn != proc && !c.closed {
		c.cond.Wait()
	}
	c.state[proc] = stateRunning
}

// Done marks a processor's workload complete. Run calls it automatically.
func (c *Controller) Done(proc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state[proc] = stateDone
	if c.turn == proc {
		c.turn = -1
	}
	c.schedule()
}

// schedule (with mu held) grants the next ready processor if none is
// currently running.
func (c *Controller) schedule() {
	if c.turn != -1 {
		return // someone is executing
	}
	// A processor in stateRunning but not the current turn is executing
	// pure computation between memory ops; we must wait for it to arrive.
	for _, st := range c.state {
		if st == stateRunning {
			return
		}
	}
	ready := make([]int, 0, c.n)
	for id, st := range c.state {
		if st == stateReady {
			ready = append(ready, id)
		}
	}
	if len(ready) == 0 {
		c.cond.Broadcast() // all done
		return
	}
	c.turn = c.policy.Pick(ready, c.steps)
	c.steps++
	c.cond.Broadcast()
}

// Steps returns the number of scheduling decisions made.
func (c *Controller) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// close releases all parked processors (teardown).
func (c *Controller) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
}

// Run executes one workload function per processor under the controller,
// serialized per the policy, and returns when all complete. The workloads
// receive their processor index; they must perform shared-memory accesses
// only through the machine wired to this controller.
func Run(n int, policy Policy, workload func(proc int)) *Controller {
	c := NewController(n, policy)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Done(i)
			workload(i)
		}(i)
	}
	wg.Wait()
	c.close()
	return c
}

// Explore runs `runs` independent executions under seeded-random
// schedules. For each run it creates a fresh Controller (policy
// Random(seed)), hands it to build — which wires it into a fresh machine
// via machine.Config{Scheduler: ctrl} and returns the per-processor
// workload plus a post-run invariant check — executes the workload
// serialized under that schedule, and checks. It returns the first
// failing seed (for replay) wrapped in the check's error, or (-1, nil) if
// every schedule passes.
func Explore(n, runs int, baseSeed int64,
	build func(seed int64, ctrl *Controller) (workload func(proc int), check func() error)) (failSeed int64, err error) {
	for r := 0; r < runs; r++ {
		seed := baseSeed + int64(r)
		ctrl := NewController(n, NewRandom(seed))
		workload, check := build(seed, ctrl)
		runCtl(ctrl, n, workload)
		if cerr := check(); cerr != nil {
			return seed, fmt.Errorf("sched: seed %d: %w", seed, cerr)
		}
	}
	return -1, nil
}

// RunUnder executes one workload goroutine per processor under an
// existing controller (e.g. one already wired into a machine and a trace
// recorder) and returns when all complete.
func RunUnder(c *Controller, n int, workload func(proc int)) {
	runCtl(c, n, workload)
}

func runCtl(c *Controller, n int, workload func(proc int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Done(i)
			workload(i)
		}(i)
	}
	wg.Wait()
	c.close()
}
