package sched_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sched"
)

// Serialize two processors under a seeded random schedule: the same seed
// always produces the same interleaving, so failures replay exactly.
func ExampleController() {
	ctrl := sched.NewController(2, sched.NewRandom(7))
	m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
	w := m.NewWord(0)

	sched.RunUnder(ctrl, 2, func(proc int) {
		p := m.Proc(proc)
		for {
			v := p.RLL(w)
			if p.RSC(w, v+1) {
				return
			}
		}
	})
	fmt.Println(m.Proc(0).Load(w))
	// Output: 2
}

// Enumerate EVERY schedule of a tiny workload — a stateless model check.
func ExampleExploreExhaustive() {
	build := func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		w := m.NewWord(0)
		return func(proc int) {
				p := m.Proc(proc)
				for { // an atomic increment via RLL/RSC
					v := p.RLL(w)
					if p.RSC(w, v+1) {
						return
					}
				}
			}, func() error {
				if got := m.Proc(0).Load(w); got != 2 {
					return fmt.Errorf("lost update: %d", got)
				}
				return nil
			}
	}
	res, err := sched.ExploreExhaustive(2, 10_000, build)
	fmt.Println(res.Exhausted, err)
	// Output: true <nil>
}
