package sched

import (
	"fmt"
)

// Exhaustive exploration: a stateless model checker over the scheduling
// tree. Because the controller serializes every shared-memory operation
// and each processor's behaviour is deterministic given its own inputs,
// the ready set at step i is a pure function of the scheduling choices at
// steps 0..i-1. The explorer therefore enumerates the whole tree by
// replaying decision prefixes: run with a prefix, extend greedily
// (always picking the first ready processor), record the branching
// factor at each step, and backtrack to the deepest step with an
// untried alternative.
//
// This verifies an algorithm over EVERY interleaving of a small workload
// — not a random sample — which is as close to a proof as testing gets.
// The tree grows multinomially, so keep workloads tiny (2-3 processors,
// a few operations each) and cap the run budget.

// prefixPolicy replays a fixed decision prefix, then extends with
// first-ready choices, recording the branching structure.
type prefixPolicy struct {
	prefix []int // decision at step i = index into the sorted ready set
	picks  []int // decisions actually taken this run
	widths []int // ready-set size observed at each step
	bad    bool  // prefix index out of range (tree changed — a bug)
}

func (p *prefixPolicy) Pick(ready []int, step int) int {
	idx := 0
	if step < len(p.prefix) {
		idx = p.prefix[step]
		if idx >= len(ready) {
			// The tree must be deterministic; an out-of-range replay
			// means the workload is not (e.g. it used time or ambient
			// randomness). Flag it and pick something valid.
			p.bad = true
			idx = len(ready) - 1
		}
	}
	p.picks = append(p.picks, idx)
	p.widths = append(p.widths, len(ready))
	return ready[idx]
}

// ExhaustiveResult reports what the exploration covered.
type ExhaustiveResult struct {
	// Schedules is the number of distinct complete schedules executed.
	Schedules int
	// Exhausted is true if the whole tree was covered within the budget.
	Exhausted bool
	// MaxDepth is the longest schedule seen (scheduling points).
	MaxDepth int
}

// ExploreExhaustive enumerates scheduling trees: build constructs a fresh
// deterministic system wired to the given controller and returns the
// per-processor workload and a post-run invariant check (exactly as in
// Explore). It returns the coverage report and the first check error
// encountered (with the failing decision prefix formatted into the
// error). maxRuns caps the number of schedules executed.
//
// The workload must be deterministic apart from scheduling: fixed seeds,
// no wall-clock, no ambient randomness.
func ExploreExhaustive(n int, maxRuns int,
	build func(ctrl *Controller) (workload func(proc int), check func() error)) (ExhaustiveResult, error) {
	var res ExhaustiveResult
	prefix := []int{}
	for runs := 0; ; runs++ {
		if runs >= maxRuns {
			return res, nil // budget exhausted; res.Exhausted stays false
		}
		pol := &prefixPolicy{prefix: prefix}
		ctrl := NewController(n, pol)
		workload, check := build(ctrl)
		runCtl(ctrl, n, workload)
		if pol.bad {
			return res, fmt.Errorf("sched: nondeterministic workload: replay diverged at prefix %v", prefix)
		}
		res.Schedules++
		if d := len(pol.picks); d > res.MaxDepth {
			res.MaxDepth = d
		}
		if err := check(); err != nil {
			return res, fmt.Errorf("sched: schedule %v: %w", pol.picks, err)
		}
		// Backtrack: deepest step with an untried alternative.
		next := -1
		for i := len(pol.picks) - 1; i >= 0; i-- {
			if pol.picks[i] < pol.widths[i]-1 {
				next = i
				break
			}
		}
		if next == -1 {
			res.Exhausted = true
			return res, nil
		}
		prefix = append(append([]int{}, pol.picks[:next]...), pol.picks[next]+1)
	}
}
