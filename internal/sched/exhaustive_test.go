package sched

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

// TestExhaustiveCountsIndependentOps checks the enumeration against the
// known multinomial: two processors each doing 2 independent stores have
// C(4,2) = 6 interleavings.
func TestExhaustiveCountsIndependentOps(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		w := []*machine.Word{m.NewWord(0), m.NewWord(0)}
		return func(proc int) {
				p := m.Proc(proc)
				p.Store(w[proc], 1)
				p.Store(w[proc], 2)
			}, func() error {
				return nil
			}
	}
	res, err := ExploreExhaustive(2, 1000, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("tree not exhausted within budget")
	}
	if res.Schedules != 6 {
		t.Errorf("schedules = %d, want C(4,2) = 6", res.Schedules)
	}
	if res.MaxDepth != 4 {
		t.Errorf("max depth = %d, want 4", res.MaxDepth)
	}
}

func TestExhaustiveThreeProcs(t *testing.T) {
	// 3 procs × 1 store: 3! = 6 schedules.
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 3, Scheduler: ctrl})
		w := m.NewWord(0)
		return func(proc int) {
				m.Proc(proc).Store(w, uint64(proc))
			}, func() error {
				return nil
			}
	}
	res, err := ExploreExhaustive(3, 100, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Schedules != 6 {
		t.Errorf("schedules = %d (exhausted=%v), want 6", res.Schedules, res.Exhausted)
	}
}

func TestExhaustiveBudgetCap(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		w := m.NewWord(0)
		return func(proc int) {
				p := m.Proc(proc)
				for i := 0; i < 5; i++ {
					p.Store(w, uint64(i))
				}
			}, func() error {
				return nil
			}
	}
	res, err := ExploreExhaustive(2, 10, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Error("claimed exhaustion under a tiny budget")
	}
	if res.Schedules != 10 {
		t.Errorf("schedules = %d, want exactly the budget 10", res.Schedules)
	}
}

// TestExhaustiveFig3CounterAllSchedules verifies Figure 3's CAS counter
// over EVERY schedule of 2 processors × 1 increment each (plus a spurious
// failure injected at a fixed point): the counter must be exact in all of
// them. (Two increments each is also exhaustible but needs millions of
// schedules; see the fig5 test for a 2×2 enumeration.)
func TestExhaustiveFig3CounterAllSchedules(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		v, err := core.NewCASVar(m, word.MustLayout(32), 0)
		if err != nil {
			panic(err)
		}
		m.Proc(0).FailNext(1) // deterministic spurious failure for proc 0
		return func(proc int) {
				p := m.Proc(proc)
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, old+1) {
						break
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 2 {
					return fmt.Errorf("counter = %d, want 2", got)
				}
				return nil
			}
	}
	res, err := ExploreExhaustive(2, 500_000, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("tree not exhausted (covered %d schedules)", res.Schedules)
	}
	if res.Schedules < 100 {
		t.Errorf("suspiciously few schedules: %d", res.Schedules)
	}
	t.Logf("fig3 verified over %d schedules (max depth %d)", res.Schedules, res.MaxDepth)
}

// TestExhaustiveFig5LLSCAllSchedules does the same for Figure 5.
func TestExhaustiveFig5LLSCAllSchedules(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			panic(err)
		}
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < 2; r++ {
					for {
						val, keep := v.LL(p)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 4 {
					return fmt.Errorf("counter = %d, want 4", got)
				}
				return nil
			}
	}
	res, err := ExploreExhaustive(2, 2_000_000, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("tree not exhausted (covered %d schedules)", res.Schedules)
	}
	t.Logf("fig5 verified over %d schedules (max depth %d)", res.Schedules, res.MaxDepth)
}

// TestExhaustiveFig7BoundedAllSchedules verifies Figure 7 — in its
// RLL/RSC realization, so the controller sees every shared-memory step —
// for one increment per processor.
func TestExhaustiveFig7BoundedAllSchedules(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		f, err := core.NewRBoundedFamily(m, 1)
		if err != nil {
			panic(err)
		}
		v, err := f.NewVar(0)
		if err != nil {
			panic(err)
		}
		return func(proc int) {
				p, err := f.Proc(proc)
				if err != nil {
					panic(err)
				}
				for {
					val, keep, err := v.LL(p)
					if err != nil {
						panic(err)
					}
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}, func() error {
				p, _ := f.Proc(0)
				if got := v.Read(p); got != 2 {
					return fmt.Errorf("counter = %d, want 2", got)
				}
				return nil
			}
	}
	res, err := ExploreExhaustive(2, 2_000_000, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("tree not exhausted (covered %d schedules)", res.Schedules)
	}
	t.Logf("fig7/RLLRSC verified over %d schedules (max depth %d)", res.Schedules, res.MaxDepth)
}

// TestExhaustiveDetectsPlantedBug plants a deliberately broken "counter"
// (plain read-then-store, no atomicity) and confirms the explorer finds
// the lost-update schedule.
func TestExhaustiveDetectsPlantedBug(t *testing.T) {
	build := func(ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		w := m.NewWord(0)
		return func(proc int) {
				p := m.Proc(proc)
				v := p.Load(w)  // read
				p.Store(w, v+1) // store — not atomic!
			}, func() error {
				if got := m.Proc(0).Load(w); got != 2 {
					return fmt.Errorf("lost update: counter = %d, want 2", got)
				}
				return nil
			}
	}
	_, err := ExploreExhaustive(2, 1000, build)
	if err == nil {
		t.Fatal("explorer failed to find the lost-update interleaving")
	}
	t.Logf("found as expected: %v", err)
}
