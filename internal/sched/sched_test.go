package sched

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

// recording wraps a policy and logs its picks, for determinism tests.
type recording struct {
	inner Policy
	picks []int
}

func (r *recording) Pick(ready []int, step int) int {
	p := r.inner.Pick(ready, step)
	r.picks = append(r.picks, p)
	return p
}

func TestRoundRobinPolicy(t *testing.T) {
	rr := &RoundRobin{last: -1}
	ready := []int{0, 1, 2}
	got := []int{rr.Pick(ready, 0), rr.Pick(ready, 1), rr.Pick(ready, 2), rr.Pick(ready, 3)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v, want %v", got, want)
		}
	}
	// Skips non-runnable ids.
	rr = &RoundRobin{last: 0}
	if p := rr.Pick([]int{0, 2}, 0); p != 2 {
		t.Errorf("Pick skipping 1 = %d, want 2", p)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	ready := []int{0, 1, 2, 3}
	for i := 0; i < 100; i++ {
		if a.Pick(ready, i) != b.Pick(ready, i) {
			t.Fatal("same seed produced different picks")
		}
	}
}

func TestPCTPolicyRunsHighestPriority(t *testing.T) {
	p := NewPCT(3, 100, 0) // no change points
	ready := []int{0, 1, 2}
	first := p.Pick(ready, 0)
	for i := 1; i < 20; i++ {
		if got := p.Pick(ready, i); got != first {
			t.Fatalf("PCT without change points switched from %d to %d", first, got)
		}
	}
}

func TestPCTChangePointsDemote(t *testing.T) {
	// With enough change points the running processor must eventually be
	// demoted and another one run.
	p := NewPCT(7, 10, 5)
	ready := []int{0, 1}
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		seen[p.Pick(ready, i)] = true
	}
	if len(seen) != 2 {
		t.Errorf("PCT with 5 change points over 2 procs ran only %v", seen)
	}
}

// counterWorkload builds a machine + CASVar counter wired to ctrl and
// returns the workload/check pair for Explore.
func counterWorkload(procs, rounds int) func(seed int64, ctrl *Controller) (func(int), func() error) {
	return func(seed int64, ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: procs, Scheduler: ctrl, SpuriousFailProb: 0.1, Seed: seed})
		v, err := core.NewCASVar(m, word.MustLayout(32), 0)
		if err != nil {
			panic(err)
		}
		workload := func(proc int) {
			p := m.Proc(proc)
			for r := 0; r < rounds; r++ {
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, old+1) {
						break
					}
				}
			}
		}
		check := func() error {
			got := v.Read(m.Proc(0))
			if got != uint64(procs*rounds) {
				return fmt.Errorf("counter = %d, want %d", got, procs*rounds)
			}
			return nil
		}
		return workload, check
	}
}

func TestControllerSerializesAndCompletes(t *testing.T) {
	build := counterWorkload(3, 20)
	ctrl := NewController(3, &RoundRobin{last: -1})
	workload, check := build(1, ctrl)
	runCtl(ctrl, 3, workload)
	if err := check(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Steps() == 0 {
		t.Error("controller made no scheduling decisions")
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	run := func() []int {
		rec := &recording{inner: NewRandom(99)}
		ctrl := NewController(3, rec)
		workload, check := counterWorkload(3, 10)(99, ctrl)
		runCtl(ctrl, 3, workload)
		if err := check(); err != nil {
			t.Fatal(err)
		}
		return rec.picks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestExploreCASVarManySchedules(t *testing.T) {
	// Figure 3's CAS under 150 distinct serialized schedules with
	// spurious failures: the counter must always be exact.
	failSeed, err := Explore(3, 150, 1000, counterWorkload(3, 8))
	if err != nil {
		t.Fatalf("schedule exploration found a violation at seed %d: %v", failSeed, err)
	}
}

func TestExploreRVarManySchedules(t *testing.T) {
	build := func(seed int64, ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 3, Scheduler: ctrl, SpuriousFailProb: 0.15, Seed: seed})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			panic(err)
		}
		workload := func(proc int) {
			p := m.Proc(proc)
			for r := 0; r < 8; r++ {
				for {
					val, keep := v.LL(p)
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}
		}
		check := func() error {
			if got := v.Read(m.Proc(0)); got != 24 {
				return fmt.Errorf("counter = %d, want 24", got)
			}
			return nil
		}
		return workload, check
	}
	if failSeed, err := Explore(3, 150, 2000, build); err != nil {
		t.Fatalf("seed %d: %v", failSeed, err)
	}
}

func TestExploreRBoundedManySchedules(t *testing.T) {
	// Figure 7 over RLL/RSC under systematic schedules: both the counter
	// exactness and the slot accounting must hold on every schedule.
	build := func(seed int64, ctrl *Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl, SpuriousFailProb: 0.1, Seed: seed})
		f, err := core.NewRBoundedFamily(m, 2)
		if err != nil {
			panic(err)
		}
		v, err := f.NewVar(0)
		if err != nil {
			panic(err)
		}
		workload := func(proc int) {
			p, err := f.Proc(proc)
			if err != nil {
				panic(err)
			}
			for r := 0; r < 6; r++ {
				for {
					val, keep, err := v.LL(p)
					if err != nil {
						panic(err)
					}
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}
		}
		check := func() error {
			p, _ := f.Proc(0)
			if got := v.Read(p); got != 12 {
				return fmt.Errorf("counter = %d, want 12", got)
			}
			for i := 0; i < 2; i++ {
				pr, _ := f.Proc(i)
				if pr.FreeSlots() != 2 {
					return fmt.Errorf("proc %d leaked slots: %d free, want 2", i, pr.FreeSlots())
				}
			}
			return nil
		}
		return workload, check
	}
	if failSeed, err := Explore(2, 150, 3000, build); err != nil {
		t.Fatalf("seed %d: %v", failSeed, err)
	}
}

func TestExplorePCTSchedules(t *testing.T) {
	// PCT policy end-to-end: Fig 5 LL/SC counter under priority schedules
	// with preemption points.
	for seed := int64(0); seed < 50; seed++ {
		ctrl := NewController(2, NewPCT(seed, 400, 3))
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl, Seed: seed})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			t.Fatal(err)
		}
		runCtl(ctrl, 2, func(proc int) {
			p := m.Proc(proc)
			for r := 0; r < 10; r++ {
				for {
					val, keep := v.LL(p)
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}
		})
		if got := v.Read(m.Proc(0)); got != 20 {
			t.Fatalf("seed %d: counter = %d, want 20", seed, got)
		}
	}
}
