# Development targets for the llsc repository.

GO ?= go

.PHONY: all build vet test race bench bench-json fuzz soak experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable experiment output: one BENCH_<experiment>.json per
# experiment (schema llsc-bench/v1, see docs/OBSERVABILITY.md).
bench-json:
	$(GO) run ./cmd/llscbench -json

# Short coordinated fuzzing session over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzLayoutRoundTrip -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzFieldsRoundTrip -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzModularArithmetic -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzCheckerAgainstBruteForce -fuzztime 30s ./internal/linearizability/

# Heavyweight randomized validation (minutes).
soak:
	LLSC_SOAK=1 $(GO) test -race -run TestSoak -v -timeout 60m ./internal/conformance/

# The full experiment suite (writes the tables recorded in EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/llscbench
	$(GO) run ./cmd/linearcheck
	$(GO) run ./cmd/llscfuzz
	$(GO) run ./cmd/tagsim -table

examples:
	@for e in quickstart stack queue stm largevar boundedtag universal simulator structures; do \
		echo "--- examples/$$e"; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	$(GO) clean ./...
