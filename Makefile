# Development targets for the llsc repository.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-diff fuzz fuzz-smoke trace-smoke stress-smoke soak-smoke sim-smoke service-smoke soak experiments examples clean

all: build vet test

build:
	$(GO) build ./...

# Protocol gate: go vet, gofmt, and the llscvet analyzer suite, which
# statically enforces the LL/SC usage protocol (docs/STATIC_ANALYSIS.md).
# The full suite runs with the suppression-drift audit, so a stale
# //llsc:allow clause fails the gate like any finding. The JSON report
# (vet-report.json, committed; CI fails on drift against the checkout)
# lists the suppressed findings with their reasons.
vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'
	$(GO) run ./cmd/llscvet -audit-suppressions -json vet-report.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable experiment output: one BENCH_<experiment>.json per
# experiment (schema llsc-bench/v1, see docs/OBSERVABILITY.md), including
# the contention sweep (BENCH_contention.json, see docs/CONTENTION.md).
bench-json:
	$(GO) run ./cmd/llscbench -json

# Regression gate: re-run the suite quickly into a scratch directory and
# compare each cell against the committed BENCH_*.json baselines,
# normalizing out machine speed; fails on any cell >30% over the trend.
bench-diff:
	rm -rf bench-current && mkdir -p bench-current/1 bench-current/2 bench-current/3
	for i in 1 2 3; do $(GO) run ./cmd/llscbench -ops 60000 -json -json-dir bench-current/$$i; done
	$(GO) run ./cmd/benchdiff -threshold 0.30 . bench-current/1 bench-current/2 bench-current/3

# Short coordinated fuzzing session over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzStackElimination -fuzztime 30s ./internal/structures/
	$(GO) test -fuzz FuzzLayoutRoundTrip -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzFieldsRoundTrip -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzModularArithmetic -fuzztime 10s ./internal/word/
	$(GO) test -fuzz FuzzCheckerAgainstBruteForce -fuzztime 30s ./internal/linearizability/
	$(GO) test -fuzz FuzzHistQuantile -fuzztime 30s ./internal/obs/
	$(GO) test -fuzz FuzzBenchRecordRoundTrip -fuzztime 30s ./internal/bench/

# Fast fuzz gate for CI: replay the checked-in seed corpus, then fuzz
# each property briefly for fresh coverage. Covers the linearizability
# checker, the elimination stack, the histogram quantile oracle, and the
# llsc-bench/v1 record schema (frozen-key audit included).
fuzz-smoke:
	$(GO) test -run FuzzCheckerAgainstBruteForce ./internal/linearizability/
	$(GO) test -fuzz FuzzCheckerAgainstBruteForce -fuzztime 10s ./internal/linearizability/
	$(GO) test -run FuzzStackElimination ./internal/structures/
	$(GO) test -fuzz FuzzStackElimination -fuzztime 10s ./internal/structures/
	$(GO) test -run FuzzHistQuantile ./internal/obs/
	$(GO) test -fuzz FuzzHistQuantile -fuzztime 10s ./internal/obs/
	$(GO) test -run 'FuzzBenchRecordRoundTrip|TestRecordSchemaKeyAudit' ./internal/bench/
	$(GO) test -fuzz FuzzBenchRecordRoundTrip -fuzztime 10s ./internal/bench/

# Span tracer, flight recorder, and Chrome export gate: the obs/trace
# suite under -race (ring seqlock, 0-alloc paths, flight dedupe), the
# deterministic wedge-dumps-exactly-once tests, then a real llsctrace
# replay exported as Chrome trace-event JSON — the export is
# self-validated (trace.ValidateChrome) before it is written, so the
# run failing is the gate.
trace-smoke:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestWedgeProducesExactlyOneFlightDump' ./internal/recovery/
	$(GO) test -race -run 'TestWedgeDemoFlightDump|TestSoakCellCleanRunNoFlightDump' ./internal/stress/
	$(GO) run ./cmd/llsctrace -workload fig5 -seed 7 -format chrome -out trace-smoke.json
	grep -q traceEvents trace-smoke.json

# Adversarial fault-injection matrix at reduced iterations, with a
# machine-readable record (schema llsc-stress/v1).
stress-smoke:
	LLSC_STRESS_ROUNDS=4 $(GO) test -race -run 'TestStressMatrix|TestCrashProgress|TestLockBaseline' ./internal/stress/
	$(GO) run ./cmd/llscfuzz -seqs 0 -sched 0 -stress-rounds 4 -stress-json stress-report.json

# Seeded chaos soak in miniature (< 2 minutes): every figure runs under
# the composed crash-restart adversary with per-round linearizability and
# conservation checks, the lock baseline must wedge the watchdog, and a
# machine-readable record lands in soak-report.json (schema llsc-soak/v1,
# see docs/RECOVERY.md). The flight recorder is armed: any wedge,
# linearizability, or conservation failure drops a dump in flight-dumps/
# (CI uploads the directory as an artifact on failure).
soak-smoke:
	$(GO) test -race -run 'TestSoakCell|TestWedgeDemo' ./internal/stress/
	$(GO) run ./cmd/llscsoak -rounds 8 -seed 1 -json soak-report.json -flight-dir flight-dumps

# Deterministic simulator gate (< 1 minute): the golden-report and
# byte-determinism tests pin the llsc-sim/v1 encoding, then the real CLI
# runs the smoke sweep twice with the same seed — the two reports must
# be byte-identical (cmp) — and replays the first report to re-derive
# every cell's fitness score from its decision trace. sim-report.json is
# the artifact CI uploads (schema llsc-sim/v1, see docs/SIMULATION.md).
sim-smoke:
	$(GO) test -run 'TestGoldenSmokeReport|TestReportByteDeterminism|TestReplayReproducesScores' ./internal/sim/
	$(GO) run ./cmd/llscsim -scenario smoke -json sim-report.json
	$(GO) run ./cmd/llscsim -scenario smoke -json sim-report-rerun.json
	cmp sim-report.json sim-report-rerun.json
	$(GO) run ./cmd/llscsim -replay sim-report.json
	rm -f sim-report-rerun.json

# End-to-end service gate (< 1 minute): build llscd and llscload, boot
# llscd under a deterministic chaos plan (seeded spurious bursts plus
# budgeted mid-operation worker kills) with the flight recorder armed,
# and drive a short closed-loop llscload run against it. llscload's
# exit status IS the gate: it fails on any acknowledged-but-lost
# operation (its read-your-writes ledger vs the server's final
# /v1/audit), on a read-your-writes violation, on a shed rate over the
# -max-shed-frac budget, or on a structure-conservation failure.
# Artifacts: load-report.json (schema llsc-load/v1, docs/SERVICE.md)
# and any wedge/shed-storm dumps in flight-smoke/.
service-smoke:
	$(GO) build -o llscd.smoke ./cmd/llscd
	$(GO) build -o llscload.smoke ./cmd/llscload
	rm -rf flight-smoke load-report.json && mkdir -p flight-smoke
	./llscd.smoke -addr 127.0.0.1:8377 -chaos 'burst∘kill' \
	    -chaos-crash-at 5 -chaos-kill-budget 2 -flight-dir flight-smoke & \
	pid=$$!; \
	sleep 1; \
	./llscload.smoke -url http://127.0.0.1:8377 -conns 4 -duration 5s \
	    -abort-frac 0.02 -max-shed-frac 0.2 -seed 1 -json load-report.json; \
	status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f llscd.smoke llscload.smoke; \
	exit $$status

# Heavyweight randomized validation (minutes).
soak:
	LLSC_SOAK=1 $(GO) test -race -run TestSoak -v -timeout 60m ./internal/conformance/

# The full experiment suite (writes the tables recorded in EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/llscbench
	$(GO) run ./cmd/linearcheck
	$(GO) run ./cmd/llscfuzz
	$(GO) run ./cmd/tagsim -table

examples:
	@for e in quickstart stack queue stm largevar boundedtag universal simulator structures; do \
		echo "--- examples/$$e"; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	$(GO) clean ./...
