package llsc_test

import (
	"fmt"

	llsc "repro"
)

// A bounded lock-free stack: no ABA problem, nodes recycle freely.
func ExampleStack() {
	s, _ := llsc.NewStack(8)
	s.Push(1)
	s.Push(2)
	v, _ := s.Pop()
	fmt.Println(v)
	// Output: 2
}

// A bounded MPMC FIFO queue.
func ExampleQueue() {
	q, _ := llsc.NewQueue(8)
	q.Enqueue(1)
	q.Enqueue(2)
	v, _ := q.Dequeue()
	fmt.Println(v)
	// Output: 1
}

// The hash map claims each bucket exactly once with LL/SC; values are
// last-writer-wins per key.
func ExampleHashMap() {
	m, _ := llsc.NewHashMap(64)
	m.Put(7, 700)
	m.Put(7, 701) // overwrite
	v, ok := m.Get(7)
	m.Delete(7)
	_, gone := m.Get(7)
	fmt.Println(v, ok, gone)
	// Output: 701 true false
}

// An atomic snapshot of several variables via LL + VL double-collect —
// no writes, and the collected values all held simultaneously.
func ExampleSnapshot() {
	a := llsc.MustNewVar(llsc.MustLayout(32), 10)
	b := llsc.MustNewVar(llsc.MustLayout(32), 20)
	s, _ := llsc.NewSnapshot([]*llsc.Var{a, b})

	dst := make([]uint64, 2)
	s.Collect(dst)
	fmt.Println(dst)
	// Output: [10 20]
}

// A work-stealing deque: the owner works the bottom, thieves the top.
func ExampleWSDeque() {
	d, _ := llsc.NewWSDeque(8)
	d.PushBottom(1)
	d.PushBottom(2)
	d.PushBottom(3)

	stolen, _, _ := d.Steal() // takes the oldest
	owned, _ := d.PopBottom() // takes the newest
	fmt.Println(stolen, owned, d.Size())
	// Output: 1 3 1
}

// A dynamic transaction: the address set is discovered as the body runs,
// reads are opaque, and the commit is atomic.
func ExampleMemory_runTx() {
	mem := llsc.MustNewMemory(4)
	mem.Write(0, 100)

	err := mem.RunTx(func(tx *llsc.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if err := tx.Write(1, v/2); err != nil {
			return err
		}
		return tx.Write(2, v/4)
	})
	a, _ := mem.Read(1)
	b, _ := mem.Read(2)
	fmt.Println(err, a, b)
	// Output: <nil> 50 25
}

// A wait-free shared object: operations are announced and helped, so
// every invocation finishes in a bounded number of its own steps.
func ExampleWaitFreeObject() {
	o, _ := llsc.NewWaitFree(llsc.WaitFreeConfig{Procs: 2, UserWords: 1}, []uint64{0},
		func(opcode, arg uint64, user []uint64) uint64 {
			old := user[0]
			user[0] += arg
			return old & 0xFFFF // results are 16-bit with the default layout
		})
	p, _ := o.Proc(0)
	first := o.Invoke(p, 0, 5)  // fetch-add 5, observes 0
	second := o.Invoke(p, 0, 2) // fetch-add 2, observes 5
	fmt.Println(first, second)
	// Output: 0 5
}
