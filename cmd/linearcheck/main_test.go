package main

import "testing"

func TestValidateFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		if err := validateFlags("all", 500, 3, 6, 0.2); err != nil {
			t.Errorf("validateFlags rejected the default invocation: %v", err)
		}
	})
	t.Run("every named impl", func(t *testing.T) {
		for _, impl := range implOrder {
			if err := validateFlags(impl, 1, 1, 1, 0); err != nil {
				t.Errorf("validateFlags rejected -impl %s: %v", impl, err)
			}
		}
	})
	invalid := []struct {
		name     string
		impl     string
		rounds   int
		procs    int
		ops      int
		spurious float64
	}{
		{"unknown impl", "fig8", 500, 3, 6, 0.2},
		{"zero rounds", "all", 0, 3, 6, 0.2},
		{"zero procs", "all", 500, 0, 6, 0.2},
		{"zero ops", "all", 500, 3, 0, 0.2},
		{"negative spurious", "all", 500, 3, 6, -0.2},
		{"spurious above one", "all", 500, 3, 6, 2},
	}
	for _, c := range invalid {
		t.Run(c.name, func(t *testing.T) {
			if err := validateFlags(c.impl, c.rounds, c.procs, c.ops, c.spurious); err == nil {
				t.Error("validateFlags accepted an invalid invocation (main would not exit 2)")
			}
		})
	}
}

// TestImplOrderCoversImpls keeps the display order and the factory map in
// sync: -impl all must run exactly the named implementations.
func TestImplOrderCoversImpls(t *testing.T) {
	if len(implOrder) != len(impls) {
		t.Fatalf("implOrder has %d entries, impls has %d", len(implOrder), len(impls))
	}
	for _, name := range implOrder {
		if _, ok := impls[name]; !ok {
			t.Errorf("implOrder entry %q has no factory", name)
		}
	}
}
