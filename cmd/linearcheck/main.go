// Command linearcheck stress-tests the repository's synchronization
// primitives for linearizability (experiment E9): it drives randomized
// concurrent workloads against an implementation, records the operation
// history, and verifies it against the Figure 2 sequential semantics with
// a Wing–Gong checker.
//
// Usage:
//
//	linearcheck [-impl all|fig3|fig4|fig5|fig6|fig7|mutex|ir|spec]
//	            [-rounds 500] [-procs 3] [-ops 6] [-spurious 0.2] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/word"
)

var (
	flagImpl     = flag.String("impl", "all", "implementation to check (all, fig3, fig4, fig5, fig6, fig7, mutex, ir, spec)")
	flagRounds   = flag.Int("rounds", 500, "number of independent histories per implementation")
	flagProcs    = flag.Int("procs", 3, "concurrent processes per history")
	flagOps      = flag.Int("ops", 6, "operations per process per history")
	flagSpurious = flag.Float64("spurious", 0.2, "spurious RSC failure probability for the simulated-machine implementations")
	flagVerbose  = flag.Bool("v", false, "print each implementation's progress")
)

// register is the uniform driver interface (mirrors the conformance test
// suite; reproduced here so the tool is self-contained).
type register interface {
	Read(proc int) uint64
	CAS(proc int, old, new uint64) (res, ok bool)
	LL(proc int) (val uint64, ok bool)
	VL(proc int) bool
	SC(proc int, v uint64) bool
}

type factory func(n int, initial uint64) register

// impls and implOrder name the checkable implementations; validateFlags
// resolves -impl against them.
var impls = map[string]factory{
	"fig3":  newFig3,
	"fig4":  newFig4,
	"fig5":  newFig5,
	"fig6":  newFig6,
	"fig7":  newFig7,
	"mutex": newMutex,
	"ir":    newIR,
	"spec":  newSpec,
}

var implOrder = []string{"spec", "fig3", "fig4", "fig5", "fig6", "fig7", "mutex", "ir"}

func main() {
	flag.Parse()
	if err := validateFlags(*flagImpl, *flagRounds, *flagProcs, *flagOps, *flagSpurious); err != nil {
		usageErr("%v", err)
	}

	selected := []string{*flagImpl}
	if *flagImpl == "all" {
		selected = implOrder
	}

	failures := 0
	for _, name := range selected {
		bad, total := check(name, impls[name])
		status := "OK"
		if bad > 0 {
			status = "FAILED"
			failures++
		}
		fmt.Printf("%-6s %d/%d histories linearizable  %s\n", name, total-bad, total, status)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// validateFlags rejects unusable invocations before any history is
// generated, per the repository's fail-fast CLI convention (exit 2 via
// usageErr in main).
func validateFlags(impl string, rounds, procs, ops int, spurious float64) error {
	if _, ok := impls[impl]; !ok && impl != "all" {
		return fmt.Errorf("unknown -impl %q (want all, %s)", impl, strings.Join(implOrder, ", "))
	}
	if rounds < 1 {
		return fmt.Errorf("-rounds must be positive, got %d", rounds)
	}
	if procs < 1 {
		return fmt.Errorf("-procs must be positive, got %d", procs)
	}
	if ops < 1 {
		return fmt.Errorf("-ops must be positive, got %d", ops)
	}
	if spurious < 0 || spurious > 1 {
		return fmt.Errorf("-spurious must be in [0,1], got %v", spurious)
	}
	return nil
}

// usageErr reports a bad invocation and exits 2 before any check runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linearcheck: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func check(name string, mk factory) (bad, total int) {
	const initial = 1
	for round := 0; round < *flagRounds; round++ {
		reg := mk(*flagProcs, initial)
		rec := history.NewRecorder(*flagProcs)
		var wg sync.WaitGroup
		for p := 0; p < *flagProcs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				drive(reg, rec, p, seed)
			}(p, int64(round**flagProcs+p))
		}
		wg.Wait()
		res, err := linearizability.Check(rec.Ops(), linearizability.State{Val: initial})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linearcheck: %s round %d: %v\n", name, round, err)
			bad++
			continue
		}
		if !res.Ok {
			bad++
			fmt.Fprintf(os.Stderr, "linearcheck: %s round %d NOT linearizable:\n", name, round)
			for _, o := range rec.Ops() {
				fmt.Fprintf(os.Stderr, "  %v\n", o)
			}
		}
		if *flagVerbose && (round+1)%100 == 0 {
			fmt.Printf("  %s: %d/%d rounds\n", name, round+1, *flagRounds)
		}
	}
	return bad, *flagRounds
}

// drive issues a well-formed random op sequence for process p.
func drive(reg register, rec *history.Recorder, p int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	const values = 4
	budget := *flagOps
	for budget > 0 {
		switch r.Intn(4) {
		case 0:
			call := rec.Now()
			v := reg.Read(p)
			ret := rec.Now()
			rec.Record(p, history.Op{Proc: p, Kind: history.KindRead, RetVal: v, Call: call, Return: ret})
			budget--
		case 1:
			old, new := uint64(r.Intn(values)), uint64(r.Intn(values))
			call := rec.Now()
			res, ok := reg.CAS(p, old, new)
			ret := rec.Now()
			if !ok {
				continue
			}
			rec.Record(p, history.Op{Proc: p, Kind: history.KindCAS, Arg1: old, Arg2: new, RetBool: res, Call: call, Return: ret})
			budget--
		default:
			call := rec.Now()
			v, ok := reg.LL(p)
			ret := rec.Now()
			if !ok {
				continue
			}
			rec.Record(p, history.Op{Proc: p, Kind: history.KindLL, RetVal: v, Call: call, Return: ret})
			budget--
			if budget > 0 && r.Intn(2) == 0 {
				call = rec.Now()
				res := reg.VL(p)
				ret = rec.Now()
				rec.Record(p, history.Op{Proc: p, Kind: history.KindVL, RetBool: res, Call: call, Return: ret})
				budget--
			}
			if budget > 0 {
				nv := uint64(r.Intn(values))
				call = rec.Now()
				res := reg.SC(p, nv)
				ret = rec.Now()
				rec.Record(p, history.Op{Proc: p, Kind: history.KindSC, Arg1: nv, RetBool: res, Call: call, Return: ret})
				budget--
			}
		}
	}
}

// --- adapters (one per implementation) ----------------------------------

type fig4Reg struct {
	v     *core.Var
	keeps []core.Keep
}

func newFig4(n int, initial uint64) register {
	return &fig4Reg{v: core.MustNewVar(word.DefaultLayout, initial), keeps: make([]core.Keep, n)}
}
func (a *fig4Reg) Read(int) uint64                      { return a.v.Read() }
func (a *fig4Reg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *fig4Reg) LL(p int) (uint64, bool) {
	v, k := a.v.LL()
	a.keeps[p] = k
	return v, true
}
func (a *fig4Reg) VL(p int) bool           { return a.v.VL(a.keeps[p]) }
func (a *fig4Reg) SC(p int, v uint64) bool { return a.v.SC(a.keeps[p], v) }

type fig3Reg struct {
	m *machine.Machine
	v *core.CASVar
}

func newFig3(n int, initial uint64) register {
	m := machine.MustNew(machine.Config{Procs: n, SpuriousFailProb: *flagSpurious, Seed: 42})
	v, err := core.NewCASVar(m, word.DefaultLayout, initial)
	if err != nil {
		panic(err)
	}
	return &fig3Reg{m: m, v: v}
}
func (a *fig3Reg) Read(p int) uint64 { return a.v.Read(a.m.Proc(p)) }
func (a *fig3Reg) CAS(p int, old, new uint64) (bool, bool) {
	return a.v.CompareAndSwap(a.m.Proc(p), old, new), true
}
func (a *fig3Reg) LL(int) (uint64, bool) { return 0, false }
func (a *fig3Reg) VL(int) bool           { return false }
func (a *fig3Reg) SC(int, uint64) bool   { return false }

type fig5Reg struct {
	m     *machine.Machine
	v     *core.RVar
	keeps []core.Keep
}

func newFig5(n int, initial uint64) register {
	m := machine.MustNew(machine.Config{Procs: n, SpuriousFailProb: *flagSpurious, Seed: 17})
	v, err := core.NewRVar(m, word.DefaultLayout, initial)
	if err != nil {
		panic(err)
	}
	return &fig5Reg{m: m, v: v, keeps: make([]core.Keep, n)}
}
func (a *fig5Reg) Read(p int) uint64                    { return a.v.Read(a.m.Proc(p)) }
func (a *fig5Reg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *fig5Reg) LL(p int) (uint64, bool) {
	v, k := a.v.LL(a.m.Proc(p))
	a.keeps[p] = k
	return v, true
}
func (a *fig5Reg) VL(p int) bool           { return a.v.VL(a.m.Proc(p), a.keeps[p]) }
func (a *fig5Reg) SC(p int, v uint64) bool { return a.v.SC(a.m.Proc(p), a.keeps[p], v) }

type fig6Reg struct {
	f     *core.LargeFamily
	v     *core.LargeVar
	keeps []core.LKeep
	bufs  [][]uint64
}

func newFig6(n int, initial uint64) register {
	f := core.MustNewLargeFamily(core.LargeConfig{Procs: n, Words: 1})
	v, err := f.NewVar([]uint64{initial})
	if err != nil {
		panic(err)
	}
	a := &fig6Reg{f: f, v: v, keeps: make([]core.LKeep, n), bufs: make([][]uint64, n)}
	for i := range a.bufs {
		a.bufs[i] = make([]uint64, 1)
	}
	return a
}
func (a *fig6Reg) proc(p int) *core.LargeProc {
	pr, err := a.f.Proc(p)
	if err != nil {
		panic(err)
	}
	return pr
}
func (a *fig6Reg) Read(p int) uint64 {
	a.v.Read(a.proc(p), a.bufs[p])
	return a.bufs[p][0]
}
func (a *fig6Reg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *fig6Reg) LL(p int) (uint64, bool) {
	pr := a.proc(p)
	for {
		keep, res := a.v.WLL(pr, a.bufs[p])
		if res == core.Succ {
			a.keeps[p] = keep
			return a.bufs[p][0], true
		}
	}
}
func (a *fig6Reg) VL(p int) bool           { return a.v.VL(a.proc(p), a.keeps[p]) }
func (a *fig6Reg) SC(p int, v uint64) bool { return a.v.SC(a.proc(p), a.keeps[p], []uint64{v}) }

type fig7Reg struct {
	f     *core.BoundedFamily
	v     *core.BoundedVar
	keeps []core.BKeep
}

func newFig7(n int, initial uint64) register {
	f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: n, K: 2})
	v, err := f.NewVar(initial)
	if err != nil {
		panic(err)
	}
	return &fig7Reg{f: f, v: v, keeps: make([]core.BKeep, n)}
}
func (a *fig7Reg) proc(p int) *core.BoundedProc {
	pr, err := a.f.Proc(p)
	if err != nil {
		panic(err)
	}
	return pr
}
func (a *fig7Reg) Read(int) uint64                      { return a.v.Read() }
func (a *fig7Reg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *fig7Reg) LL(p int) (uint64, bool) {
	v, k, err := a.v.LL(a.proc(p))
	if err != nil {
		panic(err)
	}
	a.keeps[p] = k
	return v, true
}
func (a *fig7Reg) VL(p int) bool           { return a.v.VL(a.proc(p), a.keeps[p]) }
func (a *fig7Reg) SC(p int, v uint64) bool { return a.v.SC(a.proc(p), a.keeps[p], v) }

type mutexReg struct{ v *baseline.MutexLLSC }

func newMutex(n int, initial uint64) register {
	v, err := baseline.NewMutexLLSC(n, initial)
	if err != nil {
		panic(err)
	}
	return &mutexReg{v: v}
}
func (a *mutexReg) Read(int) uint64                      { return a.v.Read() }
func (a *mutexReg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *mutexReg) LL(p int) (uint64, bool)              { return a.v.LL(p), true }
func (a *mutexReg) VL(p int) bool                        { return a.v.VL(p) }
func (a *mutexReg) SC(p int, v uint64) bool              { return a.v.SC(p, v) }

type irReg struct{ v *baseline.IsraeliRappoport }

func newIR(n int, initial uint64) register {
	v, err := baseline.NewIsraeliRappoport(n, initial)
	if err != nil {
		panic(err)
	}
	return &irReg{v: v}
}
func (a *irReg) Read(int) uint64                      { return a.v.Read() }
func (a *irReg) CAS(int, uint64, uint64) (bool, bool) { return false, false }
func (a *irReg) LL(p int) (uint64, bool) {
	v, _ := a.v.LL(p)
	return v, true
}
func (a *irReg) VL(p int) bool           { return a.v.VL(p) }
func (a *irReg) SC(p int, v uint64) bool { return a.v.SC(p, v) }

type specReg struct{ v *spec.Register }

func newSpec(n int, initial uint64) register {
	return &specReg{v: spec.MustNewRegister(n, initial)}
}
func (a *specReg) Read(int) uint64                         { return a.v.Read() }
func (a *specReg) CAS(_ int, old, new uint64) (bool, bool) { return a.v.CAS(old, new), true }
func (a *specReg) LL(p int) (uint64, bool)                 { return a.v.LL(p), true }
func (a *specReg) VL(p int) bool                           { return a.v.VL(p) }
func (a *specReg) SC(p int, v uint64) bool                 { return a.v.SC(p, v) }
