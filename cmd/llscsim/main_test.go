package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	ok := func(f simFlags) simFlags { return f }
	cases := []struct {
		name string
		f    simFlags
		want string // error substring; empty means the flags are valid
	}{
		{"builtin scenario", ok(simFlags{scenario: "smoke"}), ""},
		{"config file", ok(simFlags{config: "s.yaml"}), ""},
		{"seed override", ok(simFlags{scenario: "smoke", seed: 7}), ""},
		{"check mode", ok(simFlags{config: "s.yaml", check: true}), ""},
		{"replay mode", ok(simFlags{replay: "r.json"}), ""},
		{"list mode", ok(simFlags{list: true}), ""},

		{"no mode", simFlags{}, "required"},
		{"unknown builtin", simFlags{scenario: "warp"}, "unknown -scenario"},
		{"scenario and config", simFlags{scenario: "smoke", config: "s.yaml"}, "mutually exclusive"},
		{"negative seed", simFlags{scenario: "smoke", seed: -1}, "-seed"},
		{"replay with scenario", simFlags{replay: "r.json", scenario: "smoke"}, "-replay"},
		{"replay with config", simFlags{replay: "r.json", config: "s.yaml"}, "-replay"},
		{"replay with seed", simFlags{replay: "r.json", seed: 3}, "-seed"},
		{"replay with check", simFlags{replay: "r.json", check: true}, "-check"},
		{"list with scenario", simFlags{list: true, scenario: "smoke"}, "-list"},
		{"list with replay", simFlags{list: true, replay: "r.json"}, "-list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.f)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
