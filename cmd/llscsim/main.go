// Command llscsim runs the deterministic discrete-event workload
// simulator (internal/sim): it samples a scenario's arrival trace,
// sweeps the contention-management grid — policy × elimination ×
// sharding — over the simulated machine, and writes an llsc-sim/v1
// report naming the winning configuration with per-dimension
// counterfactual deltas. The same scenario and seed always produce a
// byte-identical report; -replay proves it by re-executing a recorded
// report's embedded trace and comparing every cell's outcome.
//
// Usage:
//
//	llscsim [-scenario smoke] [-config scenario.yaml] [-seed N]
//	        [-json report.json] [-no-trace] [-check]
//	llscsim -replay report.json
//	llscsim -list
//
// -scenario names a built-in scenario (see -list); -config reads one
// from a YAML or JSON file instead (docs/SIMULATION.md documents the
// schema). -seed overrides the scenario's seed. -no-trace drops the
// embedded arrival trace from the report (smaller, but not replayable).
// -check validates the scenario and exits without running.
//
// Exit status: 0 success (or replay equivalence), 1 run failure or
// replay divergence, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

var (
	flagScenario = flag.String("scenario", "", "built-in scenario to run (see -list)")
	flagConfig   = flag.String("config", "", "scenario config file (.yaml, .yml, or .json)")
	flagSeed     = flag.Int64("seed", 0, "override the scenario's seed (0 keeps the scenario's own)")
	flagJSON     = flag.String("json", "", "write the llsc-sim/v1 report to this path")
	flagNoTrace  = flag.Bool("no-trace", false, "drop the embedded arrival trace from the report (not replayable)")
	flagCheck    = flag.Bool("check", false, "validate the scenario and exit without running")
	flagReplay   = flag.String("replay", "", "re-execute a recorded report's embedded trace and verify equivalence")
	flagList     = flag.Bool("list", false, "list the built-in scenarios and exit")
)

// simFlags is the validated flag set, extracted so the fail-fast rules
// are unit-testable without exiting the process.
type simFlags struct {
	scenario, config string
	seed             int64
	json             string
	noTrace, check   bool
	replay           string
	list             bool
}

// validateFlags applies the fail-fast rules (exit 2 before any cell
// runs); it returns the error text usageErr would print.
func validateFlags(f simFlags) error {
	if f.list {
		if f.scenario != "" || f.config != "" || f.replay != "" {
			return fmt.Errorf("-list takes no other mode flags")
		}
		return nil
	}
	if f.replay != "" {
		if f.scenario != "" || f.config != "" {
			return fmt.Errorf("-replay re-runs the report's own scenario; -scenario/-config cannot be combined with it")
		}
		if f.seed != 0 {
			return fmt.Errorf("-replay re-runs the report's own seed; -seed cannot be combined with it")
		}
		if f.check {
			return fmt.Errorf("-check validates a scenario, not a report; it cannot be combined with -replay")
		}
		return nil
	}
	if f.scenario == "" && f.config == "" {
		return fmt.Errorf("one of -scenario, -config, -replay, or -list is required (built-ins: %v)", sim.Builtins())
	}
	if f.scenario != "" && f.config != "" {
		return fmt.Errorf("-scenario and -config are mutually exclusive")
	}
	if f.scenario != "" {
		if _, ok := sim.Builtin(f.scenario); !ok {
			return fmt.Errorf("unknown -scenario %q (built-ins: %v)", f.scenario, sim.Builtins())
		}
	}
	if f.seed < 0 {
		return fmt.Errorf("-seed must be non-negative, got %d", f.seed)
	}
	return nil
}

// usageErr reports a bad invocation and exits 2 before anything runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscsim: "+format+"\n", args...)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	f := simFlags{
		scenario: *flagScenario, config: *flagConfig,
		seed: *flagSeed, json: *flagJSON,
		noTrace: *flagNoTrace, check: *flagCheck,
		replay: *flagReplay, list: *flagList,
	}
	if err := validateFlags(f); err != nil {
		usageErr("%v", err)
	}

	switch {
	case f.list:
		for _, name := range sim.Builtins() {
			sc, _ := sim.Builtin(name)
			fmt.Printf("%-12s figure %s, %d procs, %d keys, horizon %d, %d sweep cells\n",
				name, sc.Figure, sc.Procs, sc.Keys, sc.Horizon, len(sc.Sweep.Policies)*len(sc.Sweep.Elimination)*len(sc.Sweep.Shards))
		}
		return
	case f.replay != "":
		replay(f)
		return
	}

	sc, err := loadScenario(f)
	if err != nil {
		usageErr("%v", err)
	}
	if f.check {
		fmt.Printf("scenario %q validates: figure %s, %d procs, %d sweep cells\n",
			sc.Name, sc.Figure, sc.Procs, len(sc.Sweep.Policies)*len(sc.Sweep.Elimination)*len(sc.Sweep.Shards))
		return
	}

	rep, err := sim.RunSweep(sc)
	if err != nil {
		fail("%v", err)
	}
	rep.Summary(os.Stdout)
	if f.json != "" {
		if err := rep.WriteFile(f.json); err != nil {
			fail("writing report: %v", err)
		}
		fmt.Printf("report: %s\n", f.json)
	}
}

// loadScenario resolves the scenario from -scenario or -config and
// applies the -seed override.
func loadScenario(f simFlags) (sim.Scenario, error) {
	var sc sim.Scenario
	if f.scenario != "" {
		sc, _ = sim.Builtin(f.scenario)
	} else {
		var err error
		sc, err = sim.DecodeFile(f.config)
		if err != nil {
			return sim.Scenario{}, err
		}
	}
	if f.seed != 0 {
		sc.Seed = f.seed
	}
	if f.noTrace {
		sc.RecordTrace = false
	}
	return sc, nil
}

// replay re-executes a recorded report and verifies every cell's
// outcome matches, exiting 1 on divergence.
func replay(f simFlags) {
	rep, err := sim.ReadReportFile(f.replay)
	if err != nil {
		fail("%v", err)
	}
	again, err := sim.Replay(rep)
	if err != nil {
		fail("%v", err)
	}
	if diffs := sim.CompareCells(rep, again); len(diffs) != 0 {
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "llscsim: replay mismatch: %s\n", d)
		}
		fail("replay diverged in %d cell(s)", len(diffs))
	}
	fmt.Printf("replay: %d cells reproduced exactly (winner %s, score %.3f)\n",
		len(rep.Cells), rep.Decisions.Winner.String(), rep.Decisions.Score)
	if f.json != "" {
		if err := again.WriteFile(f.json); err != nil {
			fail("writing report: %v", err)
		}
		fmt.Printf("report: %s\n", f.json)
	}
}
