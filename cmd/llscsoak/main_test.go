package main

import (
	"strings"
	"testing"
	"time"
)

func validSoakFlags() soakFlags {
	return soakFlags{
		procs: 3, rounds: 20, ops: 14,
		killEvery: 40, killBudget: 3,
		watchdogK: 50_000, leaseTTL: 200_000,
		register: "all", timeout: time.Minute,
	}
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if err := validateFlags(validSoakFlags()); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	f := validSoakFlags()
	f.register = "fig6"
	if err := validateFlags(f); err != nil {
		t.Fatalf("fig6 rejected: %v", err)
	}
}

func TestValidateFlagsRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*soakFlags)
		want string
	}{
		{"one proc", func(f *soakFlags) { f.procs = 1 }, "-procs"},
		{"zero rounds", func(f *soakFlags) { f.rounds = 0 }, "-rounds"},
		{"zero ops", func(f *soakFlags) { f.ops = 0 }, "-ops"},
		{"kill at zero", func(f *soakFlags) { f.killEvery = 0 }, "-kill-every"},
		{"negative budget", func(f *soakFlags) { f.killBudget = -1 }, "-kill-budget"},
		{"zero watchdog", func(f *soakFlags) { f.watchdogK = 0 }, "-watchdog-k"},
		{"zero ttl", func(f *soakFlags) { f.leaseTTL = 0 }, "-lease-ttl"},
		{"zero timeout", func(f *soakFlags) { f.timeout = 0 }, "-timeout"},
		{"unknown register", func(f *soakFlags) { f.register = "fig9" }, "-register"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := validSoakFlags()
			c.mut(&f)
			err := validateFlags(f)
			if err == nil {
				t.Fatal("bad flags accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %s", err, c.want)
			}
		})
	}
}
