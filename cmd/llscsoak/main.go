// Command llscsoak is the chaos soak harness: it runs every figure
// implementation for many quiescent rounds under a composed adversary —
// budgeted crash-restart kills layered over spurious-failure bursts and
// tag pressure — exercising the full crash-recovery lifecycle (lease
// handoff, machine restart, resource reclamation) on every kill. After
// each round it re-checks linearizability and the figure's
// resource-conservation invariant; throughout, a wedge watchdog verifies
// the non-blocking claim. The lock-based contrast baseline, whose crashed
// lock holder must wedge the same watchdog, runs last.
//
// Usage:
//
//	llscsoak [-procs 3] [-rounds 20] [-ops 14] [-seed 1]
//	         [-kill-every 40] [-kill-budget 3]
//	         [-watchdog-k 50000] [-lease-ttl 200000]
//	         [-register all] [-timeout 60s] [-json soak-report.json]
//
// Exit status: 0 all checks passed, 1 a soak check failed (linearizability
// violation, conservation leak, watchdog wedge on a figure, or a baseline
// that failed to wedge), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stress"
)

var (
	flagProcs      = flag.Int("procs", 3, "processors per cell")
	flagRounds     = flag.Int("rounds", 20, "quiescent rounds per cell")
	flagOps        = flag.Int("ops", 14, "operation target per processor per round")
	flagSeed       = flag.Int64("seed", 1, "base seed for the drivers' operation mix")
	flagKillEvery  = flag.Int("kill-every", 40, "machine-operation index, per incarnation, at which the victim is killed")
	flagKillBudget = flag.Int("kill-budget", 3, "crash-restart kills per cell")
	flagWatchdogK  = flag.Uint64("watchdog-k", 50_000, "machine steps without a completed operation before the watchdog declares a wedge")
	flagLeaseTTL   = flag.Uint64("lease-ttl", 200_000, "registry lease time-to-live in machine steps")
	flagRegister   = flag.String("register", "all", "figure to soak: all, or one of fig3|fig4|fig5|fig6|fig7")
	flagTimeout    = flag.Duration("timeout", 60*time.Second, "wall-clock bound per cell")
	flagJSON       = flag.String("json", "", "write the soak report (schema "+stress.SoakSchema+") to this path")
)

// usageErr reports a bad invocation and exits 2 before any cell runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscsoak: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *flagProcs < 2 {
		usageErr("-procs must be at least 2, got %d", *flagProcs)
	}
	if *flagRounds < 1 {
		usageErr("-rounds must be positive, got %d", *flagRounds)
	}
	if *flagOps < 1 {
		usageErr("-ops must be positive, got %d", *flagOps)
	}
	if *flagKillEvery < 1 {
		usageErr("-kill-every must be at least 1, got %d (killing at op 0 would loop restart->kill forever)", *flagKillEvery)
	}
	if *flagKillBudget < 0 {
		usageErr("-kill-budget must be non-negative, got %d", *flagKillBudget)
	}
	if *flagWatchdogK < 1 {
		usageErr("-watchdog-k must be at least 1, got %d", *flagWatchdogK)
	}
	if *flagLeaseTTL < 1 {
		usageErr("-lease-ttl must be at least 1, got %d", *flagLeaseTTL)
	}
	if *flagTimeout <= 0 {
		usageErr("-timeout must be positive, got %v", *flagTimeout)
	}
	regs := stress.DefaultRegisters()
	if *flagRegister != "all" {
		found := false
		for _, r := range regs {
			if r.Name == *flagRegister {
				regs = []stress.RegisterSpec{r}
				found = true
				break
			}
		}
		if !found {
			usageErr("unknown -register %q (want all, fig3, fig4, fig5, fig6, or fig7)", *flagRegister)
		}
	}

	cfg := stress.SoakConfig{
		Procs: *flagProcs, Rounds: *flagRounds, OpsPerProc: *flagOps, Seed: *flagSeed,
		KillEvery: *flagKillEvery, KillBudget: *flagKillBudget,
		WatchdogK: *flagWatchdogK, LeaseTTL: *flagLeaseTTL, Timeout: *flagTimeout,
	}
	rep, err := stress.RunSoak(cfg, regs)
	if err != nil {
		// Config errors surface here before any round runs (e.g. a window
		// that cannot fit the checker) — still a usage problem.
		fmt.Fprintf(os.Stderr, "llscsoak: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("soak: %d rounds x %d procs x %d ops/proc, seed %d, kill every %d (budget %d)\n",
		cfg.Rounds, cfg.Procs, cfg.OpsPerProc, cfg.Seed, cfg.KillEvery, cfg.KillBudget)
	failed := 0
	for _, c := range rep.Cells {
		status := "ok"
		if !c.Ok {
			status = "FAIL: " + c.Violation
			failed++
		}
		fmt.Printf("  %-5s rounds=%-3d ops=%-5d kills=%d restarts=%d post-restart-commits=%-3d wedged=%d  %s\n",
			c.Register, c.Rounds, c.Ops, c.Kills, c.Restarts, c.PostRestartCommits, c.WatchdogWedged, status)
	}
	b := rep.Baseline
	bstatus := "ok (wedged as a lock-based baseline must)"
	if !b.Wedged {
		bstatus = "FAIL: watchdog stayed silent on a crashed lock holder"
		failed++
	}
	fmt.Printf("  %-5s completed=%d steps=%d checks=%d k=%d  %s\n",
		b.Register, b.Completed, b.Steps, b.Checks, b.K, bstatus)

	if *flagJSON != "" {
		if err := rep.WriteFile(*flagJSON); err != nil {
			fmt.Fprintf(os.Stderr, "llscsoak: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", *flagJSON)
	}
	if failed > 0 {
		fmt.Printf("\nFAILED: %d soak checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall soak checks passed")
}
