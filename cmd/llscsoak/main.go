// Command llscsoak is the chaos soak harness: it runs every figure
// implementation for many quiescent rounds under a composed adversary —
// budgeted crash-restart kills layered over spurious-failure bursts and
// tag pressure — exercising the full crash-recovery lifecycle (lease
// handoff, machine restart, resource reclamation) on every kill. After
// each round it re-checks linearizability and the figure's
// resource-conservation invariant; throughout, a wedge watchdog verifies
// the non-blocking claim. The lock-based contrast baseline, whose crashed
// lock holder must wedge the same watchdog, runs last.
//
// Usage:
//
//	llscsoak [-procs 3] [-rounds 20] [-ops 14] [-seed 1]
//	         [-kill-every 40] [-kill-budget 3]
//	         [-watchdog-k 50000] [-lease-ttl 200000]
//	         [-register all] [-timeout 60s] [-json soak-report.json]
//	         [-metrics-addr :8080] [-flight-dir dumps/]
//
// -metrics-addr serves live expvar (/debug/vars), pprof (/debug/pprof/),
// plain-text counters (/metrics), Prometheus text exposition
// (/metrics/prometheus), and a liveness probe (/healthz) during the run.
// -flight-dir arms a flight recorder per cell: the first linearizability
// violation, conservation leak, or wedge verdict dumps an llsc-flight/v1
// snapshot plus a Chrome trace export there (see docs/OBSERVABILITY.md).
//
// Exit status: 0 all checks passed, 1 a soak check failed (linearizability
// violation, conservation leak, watchdog wedge on a figure, or a baseline
// that failed to wedge), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/stress"
)

var (
	flagProcs      = flag.Int("procs", 3, "processors per cell")
	flagRounds     = flag.Int("rounds", 20, "quiescent rounds per cell")
	flagOps        = flag.Int("ops", 14, "operation target per processor per round")
	flagSeed       = flag.Int64("seed", 1, "base seed for the drivers' operation mix")
	flagKillEvery  = flag.Int("kill-every", 40, "machine-operation index, per incarnation, at which the victim is killed")
	flagKillBudget = flag.Int("kill-budget", 3, "crash-restart kills per cell")
	flagWatchdogK  = flag.Uint64("watchdog-k", 50_000, "machine steps without a completed operation before the watchdog declares a wedge")
	flagLeaseTTL   = flag.Uint64("lease-ttl", 200_000, "registry lease time-to-live in machine steps")
	flagRegister   = flag.String("register", "all", "figure to soak: all, or one of fig3|fig4|fig5|fig6|fig7")
	flagTimeout    = flag.Duration("timeout", 60*time.Second, "wall-clock bound per cell")
	flagJSON       = flag.String("json", "", "write the soak report (schema "+stress.SoakSchema+") to this path")
	flagMetrics    = flag.String("metrics-addr", "", "serve live expvar/pprof/metrics (incl. /metrics/prometheus and /healthz) on this address during the run (e.g. :8080)")
	flagFlightDir  = flag.String("flight-dir", "", "arm a flight recorder: dump llsc-flight/v1 snapshots into this directory when a soak check trips")
)

// soakFlags is the validated flag set, extracted so the fail-fast rules
// are unit-testable without exiting the process.
type soakFlags struct {
	procs, rounds, ops    int
	killEvery, killBudget int
	watchdogK, leaseTTL   uint64
	register              string
	timeout               time.Duration
}

// validateFlags applies the fail-fast rules (exit 2 before any cell
// runs); it returns the error text usageErr would print.
func validateFlags(f soakFlags) error {
	if f.procs < 2 {
		return fmt.Errorf("-procs must be at least 2, got %d", f.procs)
	}
	if f.rounds < 1 {
		return fmt.Errorf("-rounds must be positive, got %d", f.rounds)
	}
	if f.ops < 1 {
		return fmt.Errorf("-ops must be positive, got %d", f.ops)
	}
	if f.killEvery < 1 {
		return fmt.Errorf("-kill-every must be at least 1, got %d (killing at op 0 would loop restart->kill forever)", f.killEvery)
	}
	if f.killBudget < 0 {
		return fmt.Errorf("-kill-budget must be non-negative, got %d", f.killBudget)
	}
	if f.watchdogK < 1 {
		return fmt.Errorf("-watchdog-k must be at least 1, got %d", f.watchdogK)
	}
	if f.leaseTTL < 1 {
		return fmt.Errorf("-lease-ttl must be at least 1, got %d", f.leaseTTL)
	}
	if f.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", f.timeout)
	}
	if f.register != "all" {
		found := false
		for _, r := range stress.DefaultRegisters() {
			if r.Name == f.register {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown -register %q (want all, fig3, fig4, fig5, fig6, or fig7)", f.register)
		}
	}
	return nil
}

// usageErr reports a bad invocation and exits 2 before any cell runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscsoak: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if err := validateFlags(soakFlags{
		procs: *flagProcs, rounds: *flagRounds, ops: *flagOps,
		killEvery: *flagKillEvery, killBudget: *flagKillBudget,
		watchdogK: *flagWatchdogK, leaseTTL: *flagLeaseTTL,
		register: *flagRegister, timeout: *flagTimeout,
	}); err != nil {
		usageErr("%v", err)
	}
	regs := stress.DefaultRegisters()
	if *flagRegister != "all" {
		for _, r := range regs {
			if r.Name == *flagRegister {
				regs = []stress.RegisterSpec{r}
				break
			}
		}
	}
	if *flagMetrics != "" {
		srv, err := obs.Serve(*flagMetrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscsoak: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "llscsoak: metrics at http://%s/debug/vars (text: /metrics, prometheus: /metrics/prometheus, health: /healthz)\n", srv.Addr())
	}

	cfg := stress.SoakConfig{
		Procs: *flagProcs, Rounds: *flagRounds, OpsPerProc: *flagOps, Seed: *flagSeed,
		KillEvery: *flagKillEvery, KillBudget: *flagKillBudget,
		WatchdogK: *flagWatchdogK, LeaseTTL: *flagLeaseTTL, Timeout: *flagTimeout,
		FlightDir: *flagFlightDir,
	}
	rep, err := stress.RunSoak(cfg, regs)
	if err != nil {
		// Config errors surface here before any round runs (e.g. a window
		// that cannot fit the checker) — still a usage problem.
		fmt.Fprintf(os.Stderr, "llscsoak: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("soak: %d rounds x %d procs x %d ops/proc, seed %d, kill every %d (budget %d)\n",
		cfg.Rounds, cfg.Procs, cfg.OpsPerProc, cfg.Seed, cfg.KillEvery, cfg.KillBudget)
	failed := 0
	for _, c := range rep.Cells {
		status := "ok"
		if !c.Ok {
			status = "FAIL: " + c.Violation
			failed++
		}
		fmt.Printf("  %-5s rounds=%-3d ops=%-5d kills=%d restarts=%d post-restart-commits=%-3d wedged=%d  %s\n",
			c.Register, c.Rounds, c.Ops, c.Kills, c.Restarts, c.PostRestartCommits, c.WatchdogWedged, status)
		for _, dump := range c.FlightDumps {
			fmt.Printf("        flight dump: %s\n", dump)
		}
	}
	b := rep.Baseline
	bstatus := "ok (wedged as a lock-based baseline must)"
	if !b.Wedged {
		bstatus = "FAIL: watchdog stayed silent on a crashed lock holder"
		failed++
	}
	fmt.Printf("  %-5s completed=%d steps=%d checks=%d k=%d  %s\n",
		b.Register, b.Completed, b.Steps, b.Checks, b.K, bstatus)

	if *flagJSON != "" {
		if err := rep.WriteFile(*flagJSON); err != nil {
			fmt.Fprintf(os.Stderr, "llscsoak: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", *flagJSON)
	}
	if failed > 0 {
		fmt.Printf("\nFAILED: %d soak checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall soak checks passed")
}
