// Command llscd serves a key-value store, a shared counter, and a FIFO
// queue over HTTP, with every piece of shared state held in the repo's
// non-blocking structures (Treiber/M&S/sharded-counter constructions on
// the native LL/SC substrate) and every request wrapped in the
// internal/resilience contract: deadlines, retry budgets, admission
// control, fenced worker leases, and chaos-gated crash recovery.
//
// Usage:
//
//	llscd [-addr :8377] [-workers 4] [-timeout 2s] [-policy adaptive]
//	      [-chaos none|burst|kill|crash|tagpressure|burst∘kill|...]
//	      [-chaos-burst-len 50] [-chaos-crash-at 12] [-chaos-kill-budget 3]
//	      [-flight-dir DIR] [-lease-ttl 4096] [-wedge-k 4096] [-check]
//
// Endpoints: /v1/counter/{inc,get}, /v1/kv/{put,get,del},
// /v1/queue/{enq,deq}, /v1/audit, /healthz, /metrics.
//
// -chaos replays a deterministic fault plan (fault.ParsePlan vocabulary,
// compose with "∘") at the service operation boundary: spurious bursts
// and tag pressure surface as injected transient failures the retry
// layer must absorb, kill fail-stops worker incarnations mid-operation
// (including inside the queue's alloc-to-link leak window), and crash
// wedges a worker forever — the watchdog/lease/flight-recorder pipeline
// must detect, dump, fence, and reincarnate it. Plans are seeded by
// construction: the same plan against the same request stream injects at
// the same points.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/service"
)

var (
	flagAddr     = flag.String("addr", ":8377", "HTTP listen address")
	flagWorkers  = flag.Int("workers", 4, "worker pool size (chaos plans address workers as processors)")
	flagDepth    = flag.Int("dispatch-depth", 256, "bounded dispatch queue depth (overflow sheds with 503)")
	flagTimeout  = flag.Duration("timeout", 2*time.Second, "per-request deadline")
	flagPolicy   = flag.String("policy", "adaptive", "server-side retry backoff policy (none, spin, backoff, adaptive)")
	flagRetryMax = flag.Int("max-attempts", 8, "attempt cap per operation")

	flagChaos      = flag.String("chaos", "none", "chaos plan spec (fault.ParsePlan vocabulary; compose with ∘)")
	flagBurstLen   = flag.Int("chaos-burst-len", 50, "spurious-burst length for the burst component")
	flagCrashAt    = flag.Int("chaos-crash-at", 12, "victim operation index for the crash/kill components")
	flagKillBudget = flag.Int("chaos-kill-budget", 3, "total kills for the kill component")

	flagFlightDir = flag.String("flight-dir", "", "arm the flight recorder, writing wedge/shed-storm dumps here")
	flagLeaseTTL  = flag.Uint64("lease-ttl", 4096, "worker lease TTL in attempt-clock units")
	flagWedgeK    = flag.Uint64("wedge-k", 0, "watchdog wedge threshold in attempt-clock units (0 = lease-ttl)")

	flagCheck = flag.Bool("check", false, "validate the configuration and exit")
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// buildConfig validates the flags into a service.Config; every rejection
// here is an exit-2 usage error, caught before the server binds.
func buildConfig() (service.Config, error) {
	var cfg service.Config
	if *flagWorkers < 1 {
		return cfg, fmt.Errorf("-workers must be at least 1, got %d", *flagWorkers)
	}
	if *flagDepth < 1 {
		return cfg, fmt.Errorf("-dispatch-depth must be at least 1, got %d", *flagDepth)
	}
	if *flagTimeout <= 0 {
		return cfg, fmt.Errorf("-timeout must be positive, got %v", *flagTimeout)
	}
	if *flagRetryMax < 1 {
		return cfg, fmt.Errorf("-max-attempts must be at least 1, got %d", *flagRetryMax)
	}
	if *flagLeaseTTL < 1 {
		return cfg, fmt.Errorf("-lease-ttl must be at least 1, got %d", *flagLeaseTTL)
	}
	policy, err := contention.ParsePolicy(*flagPolicy)
	if err != nil {
		return cfg, fmt.Errorf("bad -policy: %w", err)
	}
	plan, err := fault.ParsePlan(*flagChaos, fault.PlanParams{
		Procs:      *flagWorkers,
		BurstLen:   *flagBurstLen,
		CrashAt:    *flagCrashAt,
		KillBudget: *flagKillBudget,
	})
	if err != nil {
		return cfg, fmt.Errorf("bad -chaos: %w", err)
	}
	cfg = service.Config{
		Workers:       *flagWorkers,
		DispatchDepth: *flagDepth,
		Timeout:       *flagTimeout,
		Policy:        policy,
		MaxAttempts:   *flagRetryMax,
		Chaos:         plan,
		FlightDir:     *flagFlightDir,
		LeaseTTL:      *flagLeaseTTL,
		WedgeK:        *flagWedgeK,
	}
	return cfg, nil
}

func main() {
	flag.Parse()
	cfg, err := buildConfig()
	if err != nil {
		usageErr("%v", err)
	}
	if *flagCheck {
		fmt.Printf("llscd: configuration ok (workers=%d depth=%d timeout=%v policy=%s chaos=%s)\n",
			cfg.Workers, cfg.DispatchDepth, cfg.Timeout, *flagPolicy, *flagChaos)
		return
	}

	s, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *flagAddr, Handler: s.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "llscd: shutting down")
		httpSrv.Close() //nolint:errcheck
	}()

	fmt.Fprintf(os.Stderr, "llscd: serving on %s (workers=%d, chaos=%s, flight-dir=%q)\n",
		*flagAddr, cfg.Workers, *flagChaos, *flagFlightDir)
	err = httpSrv.ListenAndServe()
	s.Close()
	if dumps := s.FlightDumps(); len(dumps) > 0 {
		fmt.Fprintf(os.Stderr, "llscd: %d flight dump(s):\n", len(dumps))
		for _, d := range dumps {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
	}
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "llscd: %v\n", err)
		os.Exit(1)
	}
}
