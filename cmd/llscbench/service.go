package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

// eservice measures the llscd service engine end to end: HTTP request →
// admission control → dispatch → worker → non-blocking structure →
// commit-then-acknowledge, over an in-process loopback listener. Two
// cells bound the resilience layer's price: a clean run (every op pays
// deadlines, budgets, lease heartbeats, supervision) and a chaos run
// (same stack absorbing spurious bursts plus budgeted worker kills with
// their recovery epochs). The ratio of the two is the cost of surviving
// the adversary, end to end.
func eservice() {
	fmt.Println("\n== Service (llscd engine): end-to-end resilience-stack throughput ==")
	fmt.Printf("%-22s %8s %10s %12s %12s %8s\n", "cell", "conns", "acked", "ns/op", "ops/sec", "p99")

	cells := []struct {
		name    string
		workers int
		conns   int
		chaos   string
	}{
		{"service/clean/w4c8", 4, 8, "none"},
		{"service/chaos/w4c8", 4, 8, "burst∘kill"},
	}
	for _, cell := range cells {
		plan, err := fault.ParsePlan(cell.chaos, fault.PlanParams{
			Procs: cell.workers, BurstLen: 50, CrashAt: 50, KillBudget: 2,
		})
		must(err)
		srv, err := service.New(service.Config{
			Workers: cell.workers,
			Chaos:   plan,
			Metrics: sink,
			Timeout: 10 * time.Second,
		})
		must(err)
		ts := httptest.NewServer(srv.Handler())

		total := ops() / 4
		if total < 1000 {
			total = 1000
		}
		var acked atomic.Uint64
		lat := &obs.Hist{}
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cell.conns * 2,
			MaxIdleConnsPerHost: cell.conns * 2,
		}}
		do := func(path string) {
			start := time.Now()
			resp, err := client.Get(ts.URL + path)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				acked.Add(1)
				lat.ObserveDuration(time.Since(start))
			}
		}

		var wg sync.WaitGroup
		begin := time.Now()
		for c := 0; c < cell.conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				n := total / cell.conns
				for i := 0; i < n; i++ {
					switch i % 5 {
					case 0:
						do("/v1/counter/inc?d=1")
					case 1:
						do(fmt.Sprintf("/v1/queue/enq?v=%d", i+1))
					case 2:
						do("/v1/queue/deq")
					case 3:
						do(fmt.Sprintf("/v1/kv/put?k=%d&v=%d", c*100000+i, i+1))
					default:
						do(fmt.Sprintf("/v1/kv/get?k=%d", c*100000+i-1))
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(begin)
		ts.Close()
		srv.Close()

		res := bench.Result{Name: cell.name, Workers: cell.conns, Ops: acked.Load(), Elapsed: elapsed}
		fmt.Printf("%-22s %8d %10d %12.0f %12.0f %8v\n",
			cell.name, cell.conns, acked.Load(),
			float64(elapsed.Nanoseconds())/float64(acked.Load()),
			res.OpsPerSec(), time.Duration(lat.Quantile(0.99)))
		record(res, nil, lat)
	}
}
