package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(200000, 0, "all", "sim"); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateFlags(1, 2*time.Second, "backoff", "native"); err != nil {
		t.Fatalf("named policy / native substrate rejected: %v", err)
	}
	cases := []struct {
		name      string
		ops       int
		report    time.Duration
		policy    string
		substrate string
		want      string
	}{
		{"zero ops", 0, 0, "all", "sim", "-ops"},
		{"negative report", 100, -time.Second, "all", "sim", "-report-interval"},
		{"unknown policy", 100, 0, "nope", "sim", "-policy"},
		{"unknown substrate", 100, 0, "all", "turbo", "-substrate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.ops, c.report, c.policy, c.substrate)
			if err == nil {
				t.Fatal("bad flags accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %s", err, c.want)
			}
		})
	}
}
