// Command llscbench runs the repository's full experiment suite (E1-E8 and
// E10 in DESIGN.md; E9, linearizability, lives in cmd/linearcheck) and
// prints the tables recorded in EXPERIMENTS.md. Each experiment reproduces
// one figure/theorem/claim of Moir (PODC 1997).
//
// Usage:
//
//	llscbench [-quick] [-ops 200000] [-experiment all|e1|...|e8|e10|native]
//	          [-substrate sim|native]
//	          [-metrics-addr :8080] [-report-interval 2s] [-json] [-json-dir .]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/stm"
	"repro/internal/structures"
	mtrace "repro/internal/trace"
	"repro/internal/universal"
	"repro/internal/word"
)

var (
	flagQuick   = flag.Bool("quick", false, "divide all op counts by 10 for a fast smoke run")
	flagOps     = flag.Int("ops", 200000, "operations per worker for throughput experiments")
	flagExp     = flag.String("experiment", "all", "which experiment to run (all, e1..e8, e10, native, contention, service)")
	flagMetrics = flag.String("metrics-addr", "", "serve live expvar/pprof/metrics on this address during the run (e.g. :8080)")
	flagReport  = flag.Duration("report-interval", 0, "print periodic counter-delta reports to stderr at this interval (0 = off)")
	flagJSON    = flag.Bool("json", false, "write one BENCH_<experiment>.json machine-readable record file per experiment")
	flagJSONDir = flag.String("json-dir", ".", "directory for the BENCH_*.json files written by -json")
	flagPolicy  = flag.String("policy", "all", "contention policy for the contention sweep (none, spin, backoff, adaptive, all)")

	flagSubstrate = flag.String("substrate", "sim",
		"machine substrate for the machine-backed experiments (sim, native); cells that need simulation-only features are skipped on native")
)

// substrate is the parsed -substrate value: the backend every
// machine-backed experiment builds its machines on. Cells that depend on
// simulation-only features (spurious-failure injection, the step clock,
// serialized schedules, the machine observer) are skipped with a note
// when it is native. The cross-substrate "native" experiment ignores
// this and pins each of its cells' substrates itself.
var substrate = machine.SubstrateSim

// sink is the shared metrics sink for every instrumented experiment. It is
// nil unless an observability flag asked for it, so the default run pays
// only nil-receiver branches.
var sink *obs.Metrics

// recs accumulates the current experiment's JSON records; lastSnap marks
// the sink state at the previous capture so each record carries only its
// own counter delta. Experiments run sequentially, so plain globals do.
var (
	recs     []bench.Record
	lastSnap obs.Snapshot
)

func ops() int {
	if *flagQuick {
		return *flagOps / 10
	}
	return *flagOps
}

// validateFlags applies the fail-fast rules (exit 2 before experiments
// run for minutes — an unknown -policy would otherwise only surface deep
// inside the contention sweep, after every other experiment already ran).
// Extracted so the rules are unit-testable without exiting the process.
func validateFlags(ops int, report time.Duration, policy, sub string) error {
	if ops < 1 {
		return fmt.Errorf("-ops must be positive, got %d", ops)
	}
	if report < 0 {
		return fmt.Errorf("-report-interval must be non-negative, got %v", report)
	}
	if policy != "all" {
		if _, err := contention.ParsePolicy(policy); err != nil {
			return fmt.Errorf("bad -policy %q (want all, %s)", policy, strings.Join(contention.Names(), ", "))
		}
	}
	if _, err := machine.ParseSubstrate(sub); err != nil {
		return fmt.Errorf("bad -substrate: %w", err)
	}
	return nil
}

func main() {
	flag.Parse()
	if err := validateFlags(*flagOps, *flagReport, *flagPolicy, *flagSubstrate); err != nil {
		usageErr("%v", err)
	}
	substrate, _ = machine.ParseSubstrate(*flagSubstrate)
	if *flagMetrics != "" || *flagReport > 0 || *flagJSON {
		sink = obs.New()
		obs.Publish("llscbench", sink)
	}
	if *flagMetrics != "" {
		srv, err := obs.Serve(*flagMetrics)
		must(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "llscbench: metrics at http://%s/debug/vars (text: /metrics, prometheus: /metrics/prometheus, health: /healthz, profiles: /debug/pprof/)\n", srv.Addr())
	}
	if *flagReport > 0 {
		stop := obs.StartReporter(os.Stderr, sink, *flagReport)
		defer stop()
	}
	experiments := []struct {
		name string
		run  func()
	}{
		{"e1", e1}, {"e2", e2}, {"e3", e3}, {"e4", e4},
		{"e5", e5}, {"e6", e6}, {"e7", e7}, {"e8", e8}, {"e10", e10},
		{"native", enative},
		{"contention", econtention},
		{"service", eservice},
	}
	sel := strings.ToLower(*flagExp)
	found := false
	for _, e := range experiments {
		if sel == "all" || sel == e.name {
			runExperiment(e.name, e.run)
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "llscbench: unknown -experiment %q\n", *flagExp)
		os.Exit(2)
	}
}

// runExperiment runs one experiment and, under -json, writes the records
// its cells captured to BENCH_<name>.json.
func runExperiment(name string, run func()) {
	recs = nil
	lastSnap = sink.Snapshot()
	run()
	if *flagJSON && len(recs) > 0 {
		path := filepath.Join(*flagJSONDir, "BENCH_"+name+".json")
		must(bench.WriteRecordsFile(path, recs))
		fmt.Fprintf(os.Stderr, "llscbench: wrote %s (%d records)\n", path, len(recs))
	}
}

// record captures one benchmark cell for -json: the Result plus the sink's
// counter delta since the last capture and optional retry/latency
// histograms. A no-op unless -json is set.
func record(res bench.Result, retries, latency *obs.Hist) {
	recordAttr(res, retries, latency, nil)
}

// recordAttr is record plus the span tracer's latency attribution
// (retry_ns / help_ns, additive llsc-bench/v1 fields).
func recordAttr(res bench.Result, retries, latency *obs.Hist, att *trace.Attribution) {
	publishHists(retries, latency, att)
	if !*flagJSON {
		return
	}
	snap := sink.Snapshot()
	rec := bench.NewRecord(res, snap.Sub(lastSnap)).WithHists(retries, latency)
	if att != nil {
		rec = rec.WithAttribution(att.RetryNs, att.HelpNs)
	}
	recs = append(recs, rec)
	lastSnap = snap
}

// recordSub is record() for machine-backed cells: it additionally stamps
// the substrate the cell's machines ran on (the additive llsc-bench/v1
// "substrate" field). Machine-free cells keep using record(), which
// leaves the field empty — a substrate is only meaningful where there is
// a machine.
func recordSub(res bench.Result, retries, latency *obs.Hist, sub machine.Substrate) {
	record(res, retries, latency)
	if *flagJSON {
		recs[len(recs)-1] = recs[len(recs)-1].WithSubstrate(sub.String())
	}
}

// publishHists exposes the most recently completed cell's histograms on
// the Prometheus route while -metrics-addr serves. Re-publishing
// replaces, so a scrape always sees the latest cell's distribution;
// empty histograms are not published.
func publishHists(retries, latency *obs.Hist, att *trace.Attribution) {
	if *flagMetrics == "" {
		return
	}
	if retries.Count() > 0 {
		obs.PublishHist("llscbench", "retries", retries)
	}
	if latency.Count() > 0 {
		obs.PublishHist("llscbench", "latency_ns", latency)
	}
	if att == nil {
		return
	}
	if att.RetryNs.Count() > 0 {
		obs.PublishHist("llscbench", "retry_ns", att.RetryNs)
	}
	if att.HelpNs.Count() > 0 {
		obs.PublishHist("llscbench", "help_ns", att.HelpNs)
	}
}

// --- E1: Figure 3 / Theorem 1 -------------------------------------------

func e1() {
	t := bench.NewTable("E1: CAS from RLL/RSC (Figure 3, Theorem 1) — throughput and retry behaviour",
		"procs", "spurious p", "ops/s", "ns/op", "RSC retries/op")
	spurs := []float64{0, 0.1}
	if substrate == machine.SubstrateNative {
		// Hardware CAS has no spurious failures to inject; only the
		// ideal column exists on the native substrate.
		spurs = []float64{0}
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for _, p := range spurs {
			cfg := machine.Config{Procs: procs, Substrate: substrate, Seed: 1}
			name := fmt.Sprintf("cas/native/p%d", procs)
			if substrate == machine.SubstrateSim {
				cfg.SpuriousFailProb = p
				cfg.Observer = sink.MachineObserver()
				name = fmt.Sprintf("cas/p%d/spur%.1f", procs, p)
			}
			m := machine.MustNew(cfg)
			v, err := core.NewCASVar(m, word.DefaultLayout, 0)
			must(err)
			v.SetMetrics(sink)
			mask := v.Layout().MaxVal()
			var casRetries obs.Hist
			res := bench.RunObserved(name, procs, ops(), &casRetries, nil, func(w, i int) int {
				proc := m.Proc(w)
				fails := 0
				for {
					old := v.Read(proc)
					if v.CompareAndSwap(proc, old, (old+1)&mask) {
						return fails
					}
					fails++
				}
			})
			// The RSC tallies come from the step accounting the native
			// hot path deliberately skips, so the column is sim-only.
			retries := "-"
			if substrate == machine.SubstrateSim {
				st := m.Stats()
				retries = fmt.Sprintf("%.3f", float64(st.RSCSpurious+st.RSCRealFail)/float64(res.Ops))
			}
			recordSub(res, &casRetries, nil, substrate)
			t.AddRow(procs, p, bench.Throughput(res.OpsPerSec()), res.NsPerOp(), retries)
		}
	}
	t.Fprint(os.Stdout)

	if substrate == machine.SubstrateNative {
		fmt.Println("E1b skipped on the native substrate: the burst step count reads the sim step clock.")
		return
	}

	// Constant time after the last spurious failure: force bursts and
	// count the steps of the final completion.
	t2 := bench.NewTable("E1b: steps after an injected spurious-failure burst (constant regardless of burst size)",
		"burst", "RLLs used", "RLLs after last spurious failure")
	for _, burst := range []int{0, 1, 5, 50} {
		m := machine.MustNew(machine.Config{Procs: 1})
		v, err := core.NewCASVar(m, word.DefaultLayout, 0)
		must(err)
		p := m.Proc(0)
		p.FailNext(burst)
		if !v.CompareAndSwap(p, 0, 1) {
			fmt.Fprintln(os.Stderr, "E1b: CAS unexpectedly failed")
			os.Exit(1)
		}
		st := m.Stats()
		t2.AddRow(burst, st.RLLs, st.RLLs-uint64(burst))
	}
	t2.Fprint(os.Stdout)
}

// --- E2: Figure 4 / Theorem 2 -------------------------------------------

func e2() {
	t := bench.NewTable("E2: LL/VL/SC from CAS (Figure 4, Theorem 2) — constant time, zero overhead",
		"procs", "vars", "ops/s", "ns/op", "p50", "p99")
	for _, procs := range []int{1, 2, 4, 8} {
		for _, nvars := range []int{1, 64} {
			vars := make([]*core.Var, nvars)
			for i := range vars {
				vars[i] = core.MustNewVar(word.MustLayout(32), 0)
				vars[i].SetMetrics(sink)
			}
			op := func(w, i int) int {
				v := vars[(w*ops()+i)%nvars]
				fails := 0
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						return fails
					}
					fails++
				}
			}
			res := bench.Run("llsc", procs, ops(), func(w, i int) { op(w, i) })
			// Separate latency pass: per-op timestamping costs ~2 clock
			// reads, so quantiles come from their own (smaller) run and
			// the throughput column stays clean.
			var scRetries, lat obs.Hist
			latRes := bench.RunObserved(fmt.Sprintf("llsc/p%d/v%d", procs, nvars),
				procs, ops()/10, &scRetries, &lat, op)
			record(bench.Result{
				Name: latRes.Name, Workers: res.Workers, Ops: res.Ops, Elapsed: res.Elapsed,
			}, &scRetries, &lat)
			t.AddRow(procs, nvars, bench.Throughput(res.OpsPerSec()), res.NsPerOp(),
				time.Duration(lat.Quantile(0.50)), time.Duration(lat.Quantile(0.99)))
		}
	}
	t.Fprint(os.Stdout)
	fmt.Println("Space overhead per variable: 0 words (tag lives inside the word).")

	// E2c: where an operation's time goes when SCs fail. The span tracer
	// attributes each SC's wall-clock to productive work vs retrying
	// (failed RSC attempts plus backoff) — the contention tax the
	// adaptive policies exist to shrink. Spurious failures on the
	// simulated machine force the retry path deterministically on any
	// host, including single-CPU runners where native-CAS contention is
	// nearly unobservable.
	if substrate == machine.SubstrateNative {
		fmt.Println("E2c skipped on the native substrate: the attribution cells are driven by injected spurious failures.")
		return
	}
	t3 := bench.NewTable("E2c: SC latency attribution under spurious failure (span tracer on, full sampling)",
		"spurious p", "ns/op", "retry p50", "retry p99", "retry share")
	for _, pr := range []float64{0, 0.1, 0.3} {
		m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: pr, Seed: 1})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		must(err)
		v.SetMetrics(sink)
		tr := trace.MustNew(trace.Config{Procs: 1})
		tr.SetMetrics(sink)
		att := &trace.Attribution{OpNs: &obs.Hist{}, RetryNs: &obs.Hist{}, WaitNs: &obs.Hist{}, HelpNs: &obs.Hist{}}
		tr.SetAttribution(att)
		v.SetTracer(tr)
		p := m.Proc(0)
		mask := v.Layout().MaxVal()
		res := bench.Run(fmt.Sprintf("sc-attr/spur%.1f", pr), 1, ops()/10, func(w, i int) {
			for {
				val, keep := v.LL(p)
				if v.SC(p, keep, (val+1)&mask) {
					return
				}
			}
		})
		recordAttr(res, nil, nil, att)
		share := 0.0
		if s := att.OpNs.Sum(); s > 0 {
			share = float64(att.RetryNs.Sum()) / float64(s)
		}
		t3.AddRow(fmt.Sprintf("%.1f", pr), res.NsPerOp(),
			time.Duration(att.RetryNs.Quantile(0.50)), time.Duration(att.RetryNs.Quantile(0.99)),
			fmt.Sprintf("%.1f%%", 100*share))
	}
	t3.Fprint(os.Stdout)
}

// --- E3: Figure 5 / Theorem 3 -------------------------------------------

func e3() {
	t := bench.NewTable("E3: direct (Figure 5, one tag) vs composed (Figure 4 over Figure 3, two tags)",
		"impl", "procs", "ops/s", "ns/op", "tag bits", "data bits", "wrap @1M ops/s")
	for _, procs := range []int{1, 4} {
		m := machine.MustNew(machine.Config{Procs: procs, Substrate: substrate})
		direct, err := core.NewRVar(m, word.MustLayout(48), 0)
		must(err)
		mask := direct.Layout().MaxVal()
		res := bench.Run("direct", procs, ops(), func(w, i int) {
			p := m.Proc(w)
			for {
				val, keep := direct.LL(p)
				if direct.SC(p, keep, (val+1)&mask) {
					break
				}
			}
		})
		t.AddRow("fig5-direct", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp(),
			48, 16, human(word.TimeToWrap(48, 1e6)))

		m2 := machine.MustNew(machine.Config{Procs: procs, Substrate: substrate})
		composed, err := baseline.NewComposed(m2, 24, 24, 0)
		must(err)
		cmask := uint64(1)<<composed.DataBits() - 1
		res = bench.Run("composed", procs, ops(), func(w, i int) {
			p := m2.Proc(w)
			for {
				val, keep := composed.LL(p)
				if composed.SC(p, keep, (val+1)&cmask) {
					break
				}
			}
		})
		t.AddRow("fig3∘fig4", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp(),
			"24+24", 16, human(word.TimeToWrap(24, 1e6)))
	}
	t.Fprint(os.Stdout)
	fmt.Println("Same data width, but the composed version's 24-bit tags wrap ~10^7× sooner.")
}

// --- E4: Figure 6 / Theorem 4 -------------------------------------------

func e4() {
	t := bench.NewTable("E4a: W-word WLL/VL/SC (Figure 6, Theorem 4) — Θ(W) WLL/SC, Θ(1) VL",
		"W", "WLL ns/op", "SC ns/op", "VL ns/op")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		f := core.MustNewLargeFamily(core.LargeConfig{Procs: 1, Words: w})
		v, err := f.NewVar(make([]uint64, w))
		must(err)
		p, err := f.Proc(0)
		must(err)
		dst := make([]uint64, w)
		val := make([]uint64, w)
		n := ops()

		t0 := time.Now()
		for i := 0; i < n; i++ {
			v.WLL(p, dst)
		}
		wllNs := float64(time.Since(t0).Nanoseconds()) / float64(n)

		t0 = time.Now()
		for i := 0; i < n; i++ {
			keep, _ := v.WLL(p, dst)
			val[0] = uint64(i) & f.MaxSegmentValue()
			v.SC(p, keep, val)
		}
		scNs := float64(time.Since(t0).Nanoseconds())/float64(n) - wllNs

		keep, _ := v.WLL(p, dst)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			v.VL(p, keep)
		}
		vlNs := float64(time.Since(t0).Nanoseconds()) / float64(n)
		t.AddRow(w, wllNs, scNs, vlNs)
	}
	t.Fprint(os.Stdout)

	t2 := bench.NewTable("E4b: space overhead is Θ(NW), independent of the number of variables T",
		"N", "W", "T", "overhead words", "overhead/T")
	for _, tc := range []struct{ n, w, t int }{
		{8, 4, 1}, {8, 4, 16}, {8, 4, 256}, {8, 4, 4096},
	} {
		f := core.MustNewLargeFamily(core.LargeConfig{Procs: tc.n, Words: tc.w})
		for i := 0; i < tc.t; i++ {
			_, err := f.NewVar(make([]uint64, tc.w))
			must(err)
		}
		t2.AddRow(tc.n, tc.w, tc.t, f.OverheadWords(),
			fmt.Sprintf("%.3f", float64(f.OverheadWords())/float64(tc.t)))
	}
	t2.Fprint(os.Stdout)
	fmt.Println("A naive per-variable generalization of Anderson–Moir [3] would need Θ(NWT).")

	// E4c: helping cost attribution. Under contention, Figure 6's SC
	// fixes other processes' incomplete copies; the help histogram
	// measures the wall-clock each fix costs, the price of the
	// construction's lock-freedom.
	t3 := bench.NewTable("E4c: Figure 6 helping cost under contention (per-fix wall clock)",
		"procs", "W", "ops/s", "fixes", "fix p50", "fix p99")
	for _, procs := range []int{2, 4} {
		const w = 4
		f := core.MustNewLargeFamily(core.LargeConfig{Procs: procs, Words: w})
		help := &obs.Hist{}
		f.SetHelpHist(help)
		v, err := f.NewVar(make([]uint64, w))
		must(err)
		dsts := make([][]uint64, procs)
		vals := make([][]uint64, procs)
		for p := range dsts {
			dsts[p] = make([]uint64, w)
			vals[p] = make([]uint64, w)
		}
		res := bench.Run(fmt.Sprintf("large-help/p%d", procs), procs, ops()/10, func(worker, i int) {
			p, err := f.Proc(worker)
			if err != nil {
				panic(err)
			}
			dst, val := dsts[worker], vals[worker]
			for {
				keep, r := v.WLL(p, dst)
				if r != core.Succ {
					continue
				}
				val[0] = uint64(i) & f.MaxSegmentValue()
				if v.SC(p, keep, val) {
					return
				}
			}
		})
		recordAttr(res, nil, nil, &trace.Attribution{HelpNs: help})
		t3.AddRow(procs, w, bench.Throughput(res.OpsPerSec()), help.Count(),
			time.Duration(help.Quantile(0.50)), time.Duration(help.Quantile(0.99)))
	}
	t3.Fprint(os.Stdout)
}

// --- E5: Figure 7 / Theorem 5 -------------------------------------------

func e5() {
	t := bench.NewTable("E5a: bounded-tag LL/VL/SC (Figure 7, Theorem 5) — throughput",
		"procs", "k", "ops/s", "ns/op", "tag bits")
	for _, procs := range []int{1, 2, 4, 8} {
		f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: procs, K: 2})
		f.SetMetrics(sink)
		v, err := f.NewVar(0)
		must(err)
		mask := f.MaxVal()
		var scRetries obs.Hist
		res := bench.RunObserved(fmt.Sprintf("bounded/p%d", procs), procs, ops(), &scRetries, nil, func(w, i int) int {
			p, err := f.Proc(w)
			if err != nil {
				panic(err)
			}
			fails := 0
			for {
				val, keep, err := v.LL(p)
				if err != nil {
					panic(err)
				}
				if v.SC(p, keep, (val+1)&mask) {
					return fails
				}
				fails++
			}
		})
		record(res, &scRetries, nil)
		t.AddRow(procs, 2, bench.Throughput(res.OpsPerSec()), res.NsPerOp(), f.TagBits())
	}
	t.Fprint(os.Stdout)

	t2 := bench.NewTable("E5b: space for T variables — Figure 7's shared family Θ(N(k+T)) vs per-variable instantiation Θ(N²T)",
		"N", "k", "T", "fig7 words", "per-var words", "ratio")
	for _, tc := range []struct{ n, k, t int }{
		{4, 1, 1}, {4, 1, 64}, {4, 1, 1024},
		{8, 2, 64}, {8, 2, 1024},
		{16, 2, 1024},
	} {
		f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: tc.n, K: tc.k})
		fig7 := f.OverheadWords() // announce array
		// Per-process queue storage (next+prev pairs pack into one word
		// per tag) is part of the construction's space too:
		fig7 += tc.n * (2*tc.n*tc.k + 1)
		for i := 0; i < tc.t; i++ {
			v, err := f.NewVar(0)
			must(err)
			fig7 += v.FootprintWords() - 1 // exclude the data word itself
		}

		b, err := baseline.NewPerVarBounded(tc.n)
		must(err)
		pv, err := b.NewVar(0)
		must(err)
		perVar := (pv.FootprintWords() - 1) * tc.t

		t2.AddRow(tc.n, tc.k, tc.t, fig7, perVar, fmt.Sprintf("%.1fx", float64(perVar)/float64(fig7)))
	}
	t2.Fprint(os.Stdout)
}

// --- E6: disjoint-access parallelism --------------------------------------

func e6() {
	// On a single-core host throughput cannot exhibit parallel cache
	// contention, so the primary signal here is the SC failure rate:
	// operations on a shared variable conflict (failed SCs force retries)
	// while operations on disjoint variables NEVER do — the structural
	// disjoint-access-parallelism claim.
	t := bench.NewTable("E6: disjoint-access parallelism (Section 5) — conflicts on shared vs disjoint variables",
		"procs", "shared ops/s", "shared SC-fails/op", "disjoint ops/s", "disjoint SC-fails/op")
	for _, procs := range []int{1, 2, 4, 8} {
		shared := core.MustNewVar(word.MustLayout(32), 0)
		shared.SetMetrics(sink)
		var sharedRetries obs.Hist
		res := bench.RunObserved(fmt.Sprintf("shared/p%d", procs), procs, ops(), &sharedRetries, nil, func(w, i int) int {
			fails := 0
			for {
				val, keep := shared.LL()
				if shared.SC(keep, val+1) {
					return fails
				}
				fails++
			}
		})
		record(res, &sharedRetries, nil)
		sharedOps := res.OpsPerSec()
		sharedRate := float64(sharedRetries.Sum()) / float64(res.Ops)

		vars := make([]*core.Var, procs)
		for i := range vars {
			vars[i] = core.MustNewVar(word.MustLayout(32), 0)
			vars[i].SetMetrics(sink)
		}
		var disjointRetries obs.Hist
		res = bench.RunObserved(fmt.Sprintf("disjoint/p%d", procs), procs, ops(), &disjointRetries, nil, func(w, i int) int {
			v := vars[w]
			fails := 0
			for {
				val, keep := v.LL()
				if v.SC(keep, val+1) {
					return fails
				}
				fails++
			}
		})
		record(res, &disjointRetries, nil)
		t.AddRow(procs,
			bench.Throughput(sharedOps), fmt.Sprintf("%.4f", sharedRate),
			bench.Throughput(res.OpsPerSec()),
			fmt.Sprintf("%.4f", float64(disjointRetries.Sum())/float64(res.Ops)))
	}
	t.Fprint(os.Stdout)

	// With a forced yield inside every LL-SC window, preemption is
	// guaranteed even on one core: shared variables now conflict heavily,
	// while disjoint variables still cannot conflict at all — the
	// structural claim, isolated from scheduling luck.
	t2 := bench.NewTable("E6b: forced yield inside the LL-SC window",
		"procs", "shared SC-fails/op", "disjoint SC-fails/op")
	for _, procs := range []int{2, 4, 8} {
		shared := core.MustNewVar(word.MustLayout(32), 0)
		var sharedFails atomic.Uint64
		res := bench.Run("shared-yield", procs, ops()/10, func(w, i int) {
			for {
				val, keep := shared.LL()
				runtime.Gosched()
				if shared.SC(keep, val+1) {
					break
				}
				sharedFails.Add(1)
			}
		})
		sharedRate := float64(sharedFails.Load()) / float64(res.Ops)

		vars := make([]*core.Var, procs)
		for i := range vars {
			vars[i] = core.MustNewVar(word.MustLayout(32), 0)
		}
		var disjointFails atomic.Uint64
		res = bench.Run("disjoint-yield", procs, ops()/10, func(w, i int) {
			v := vars[w]
			for {
				val, keep := v.LL()
				runtime.Gosched()
				if v.SC(keep, val+1) {
					break
				}
				disjointFails.Add(1)
			}
		})
		t2.AddRow(procs,
			fmt.Sprintf("%.4f", sharedRate),
			fmt.Sprintf("%.4f", float64(disjointFails.Load())/float64(res.Ops)))
	}
	t2.Fprint(os.Stdout)
	fmt.Println("Disjoint SC-fails/op is exactly 0 in every configuration: no shared state across variables.")
}

// --- E7: tag wraparound ----------------------------------------------------

func e7() {
	t := bench.NewTable("E7a: analytic time-to-wrap (the paper's 'nine years' arithmetic)",
		"tag bits", "data bits", "@1M ops/s")
	for _, bits := range []uint{8, 16, 32, 48, 56} {
		t.AddRow(bits, 64-bits, human(word.TimeToWrap(bits, 1e6)))
	}
	t.Fprint(os.Stdout)

	// E7b: force the failure. A stale LL-SC sequence is held open while a
	// writer cycles values; with cyclically reused tiny tags (no
	// feedback), the stale SC/VL is eventually fooled. Figure 7, with a
	// comparably tiny tag space, is never fooled.
	const rounds = 5000
	const tagCount = 8 // 3-bit tag space for the unsound variant

	cyclicErrors := 0
	for trial := 0; trial < 50; trial++ {
		v, err := baseline.NewCyclicTag(tagCount, 7)
		must(err)
		_, stale := v.LL()
		fooled := false
		for i := 0; i < rounds && !fooled; i++ {
			_, k := v.LL()
			if !v.SC(k, 7) {
				panic("uncontended SC failed")
			}
			if v.VL(stale) && i > 0 {
				fooled = true
			}
		}
		if fooled {
			cyclicErrors++
		}
	}

	f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: 2, K: 1})
	bv, err := f.NewVar(0)
	must(err)
	p0, err := f.Proc(0)
	must(err)
	p1, err := f.Proc(1)
	must(err)
	// Seed a word written by p1 so the stale keep is adversarial.
	_, k, err := bv.LL(p1)
	must(err)
	bv.SC(p1, k, 7)
	_, stale, err := bv.LL(p0)
	must(err)
	boundedErrors := 0
	for i := 0; i < 50*rounds; i++ {
		_, k, err := bv.LL(p1)
		must(err)
		if !bv.SC(p1, k, 7) {
			panic("uncontended SC failed")
		}
		if bv.VL(p0, stale) {
			boundedErrors++
		}
	}
	if bv.SC(p0, stale, 99) {
		boundedErrors++
	}

	t2 := bench.NewTable("E7b: forced wraparound — stale sequence held open across value-restoring SCs",
		"impl", "tag values", "trials", "erroneous validations")
	t2.AddRow("cyclic tags, no feedback (ablation)", tagCount, 50, cyclicErrors)
	t2.AddRow("fig7 bounded tags with feedback", 2*f.Procs()*f.K()+1, 50, boundedErrors)
	t2.Fprint(os.Stdout)
	fmt.Println("The feedback mechanism (announce array + tag queue) is what prevents reuse.")
}

// --- E8: applications -------------------------------------------------------

func e8() {
	t := bench.NewTable("E8: previously-inapplicable algorithms running on stock CAS (Section 1 motivation, Section 5 STM claim)",
		"structure", "procs", "ops/s", "ns/op")

	for _, procs := range []int{1, 4, 8} {
		s, err := structures.NewStack(procs * 8)
		must(err)
		s.SetMetrics(sink)
		res := bench.Run(fmt.Sprintf("stack/p%d", procs), procs, ops(), func(w, i int) {
			if err := s.Push(uint64(w)); err == nil {
				s.Pop()
			}
		})
		record(res, nil, nil)
		t.AddRow("stack push+pop", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}
	for _, procs := range []int{1, 4, 8} {
		q, err := structures.NewQueue(procs * 8)
		must(err)
		q.SetMetrics(sink)
		res := bench.Run(fmt.Sprintf("queue/p%d", procs), procs, ops(), func(w, i int) {
			if err := q.Enqueue(uint64(w)); err == nil {
				q.Dequeue()
			}
		})
		record(res, nil, nil)
		t.AddRow("queue enq+deq", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}
	for _, procs := range []int{1, 4, 8} {
		c := structures.NewCounter(0)
		c.SetMetrics(sink)
		res := bench.Run(fmt.Sprintf("counter/p%d", procs), procs, ops(), func(w, i int) {
			c.Increment()
		})
		record(res, nil, nil)
		t.AddRow("llsc counter", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())

		mv, err := baseline.NewMutexLLSC(procs, 0)
		must(err)
		res = bench.Run("mutex-counter", procs, ops(), func(w, i int) {
			for {
				x := mv.LL(w)
				if mv.SC(w, x+1) {
					break
				}
			}
		})
		t.AddRow("mutex counter (baseline)", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())

		sr := spec.MustNewRegister(procs, 0)
		res = bench.Run("spec-counter", procs, ops(), func(w, i int) {
			for {
				x := sr.LL(w)
				if sr.SC(w, x+1) {
					break
				}
			}
		})
		t.AddRow("global-lock counter (Fig 2)", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}

	for _, procs := range []int{1, 4} {
		r, err := structures.NewRing(64)
		must(err)
		res := bench.Run("ring", procs, ops(), func(w, i int) {
			if err := r.Enqueue(uint64(w)); err == nil {
				r.Dequeue()
			}
		})
		t.AddRow("ring enq+deq", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())

		hm, err := structures.NewMap(1024)
		must(err)
		res = bench.Run("hashmap", procs, ops(), func(w, i int) {
			k := uint64(i) & 1023
			if i%2 == 0 {
				_ = hm.Put(k, k)
			} else {
				hm.Get(k)
			}
		})
		t.AddRow("hash map put/get", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}

	{
		vars := make([]*core.Var, 8)
		for i := range vars {
			vars[i] = core.MustNewVar(word.MustLayout(32), 0)
		}
		snap, err := structures.NewSnapshot(vars)
		must(err)
		res := bench.Run("snapshot", 4, ops()/2, func(w, i int) {
			if w == 0 {
				v := vars[i&7]
				val, keep := v.LL()
				v.SC(keep, val+1)
				return
			}
			dst := make([]uint64, 8)
			keeps := make([]core.Keep, 8)
			snap.CollectWith(dst, keeps)
		})
		t.AddRow("8-var atomic snapshot (3 readers + writer)", 4, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}

	for _, procs := range []int{1, 4} {
		const accounts = 16
		m := stm.MustNew(accounts)
		m.SetMetrics(sink)
		res := bench.Run(fmt.Sprintf("stm/p%d", procs), procs, ops()/4, func(w, i int) {
			from := w % accounts
			to := (w + 1) % accounts
			_, err := m.Atomically([]int{from, to}, func(cur, next []uint64) {
				next[0] = (cur[0] - 1) & stm.MaxValue
				next[1] = (cur[1] + 1) & stm.MaxValue
			})
			if err != nil {
				panic(err)
			}
		})
		record(res, nil, nil)
		t.AddRow("STM 2-word transfer", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}

	for _, procs := range []int{1, 4} {
		o, err := universal.New(universal.Config{Procs: procs, Words: 4}, make([]uint64, 4))
		must(err)
		o.SetMetrics(sink)
		handles := make([]*universal.Proc, procs)
		for i := range handles {
			handles[i], err = o.Proc(i)
			must(err)
		}
		max := o.MaxSegmentValue()
		res := bench.Run(fmt.Sprintf("universal/p%d", procs), procs, ops()/4, func(w, i int) {
			o.Apply(handles[w], func(cur, next []uint64) {
				copy(next, cur)
				next[w%4] = (next[w%4] + 1) & max
			})
		})
		record(res, nil, nil)
		t.AddRow("universal object (W=4)", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}
	t.Fprint(os.Stdout)

	// Non-blockingness under a stalled process: a lock-holder that stalls
	// blocks the mutex version forever; the LL/SC version keeps going.
	fmt.Println("\nE8b: progress with a stalled process (the paper's core motivation)")
	demoStall()

	// E8c: STM behaviour across contention levels, with the transaction
	// counters exposed: fewer accounts → more conflicts → more forced
	// aborts and helping, but throughput degrades gracefully and the
	// totals stay exact.
	t3 := bench.NewTable("E8c: STM under varying contention (4 workers, transfers with a widened read-commit window)",
		"accounts", "ops/s", "commits", "mismatches", "forced aborts", "helps")
	for _, accounts := range []int{2, 4, 16, 64} {
		m := stm.MustNew(accounts)
		res := bench.Run("stm-contention", 4, ops()/16, func(w, i int) {
			from := (w + i) % accounts
			to := (w + i + 1) % accounts
			for {
				a, err := m.Read(from)
				if err != nil {
					panic(err)
				}
				b, err := m.Read(to)
				if err != nil {
					panic(err)
				}
				runtime.Gosched() // widen the window so commits conflict
				ok, err := m.MCAS([]int{from, to},
					[]uint64{a, b},
					[]uint64{(a - 1) & stm.MaxValue, (b + 1) & stm.MaxValue})
				if err != nil {
					panic(err)
				}
				if ok {
					break
				}
			}
		})
		st := m.Stats()
		t3.AddRow(accounts, bench.Throughput(res.OpsPerSec()),
			st.Commits, st.Mismatches, st.ForcedAborts, st.Helps)
	}
	t3.Fprint(os.Stdout)
	fmt.Println("Fewer accounts → more mismatches (optimistic retries); totals stay exact throughout.")

	// E8d: tail latency with a stalling process. A background "staller"
	// continuously enters its critical window and naps 50µs inside it
	// (~25% duty cycle). With a lock that window is a critical section, so
	// clean workers inherit the naps in their tail latencies; with LL/SC
	// the window is optimistic — the staller's SC simply fails and only
	// the staller pays.
	t4 := bench.NewTable("E8d: clean workers' latency beside a continuously stalling process (3 clean + 1 staller)",
		"impl", "clean p50", "clean p99", "clean p99.9", "clean max")
	const cleanWorkers = 3
	latOps := ops() / 2
	const napInside = 50 * time.Microsecond
	const napOutside = 50 * time.Microsecond

	{
		v := core.MustNewVar(word.MustLayout(32), 0)
		hist := bench.NewHistogram(cleanWorkers)
		stop := make(chan struct{})
		var stallerWG sync.WaitGroup
		stallerWG.Add(1)
		go func() { // the staller: naps inside its LL-SC window
			defer stallerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				val, keep := v.LL()
				time.Sleep(napInside)
				v.SC(keep, val+1) // usually fails; only the staller pays
				time.Sleep(napOutside)
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < cleanWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < latOps; i++ {
					if i%64 == 0 {
						runtime.Gosched() // let the staller get scheduled (1-core host)
					}
					t0 := time.Now()
					for {
						val, keep := v.LL()
						if v.SC(keep, val+1) {
							break
						}
					}
					hist.Record(w, time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		stallerWG.Wait()
		t4.AddRow("llsc counter (optimistic window)",
			hist.Quantile(0.50), hist.Quantile(0.99), hist.Quantile(0.999), hist.Quantile(1))
	}
	{
		var mu sync.Mutex
		var counter uint64
		hist := bench.NewHistogram(cleanWorkers)
		stop := make(chan struct{})
		var stallerWG sync.WaitGroup
		stallerWG.Add(1)
		go func() { // the staller: naps while HOLDING the lock
			defer stallerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				time.Sleep(napInside)
				counter++
				mu.Unlock()
				time.Sleep(napOutside)
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < cleanWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < latOps; i++ {
					if i%64 == 0 {
						runtime.Gosched() // identical yield pattern to the LL/SC run
					}
					t0 := time.Now()
					mu.Lock()
					counter++
					mu.Unlock()
					hist.Record(w, time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		stallerWG.Wait()
		t4.AddRow("mutex counter (critical section)",
			hist.Quantile(0.50), hist.Quantile(0.99), hist.Quantile(0.999), hist.Quantile(1))
	}
	t4.Fprint(os.Stdout)
	fmt.Println("The staller's in-window naps poison the lock-based tail; the LL/SC tail never sees them.")
}

func demoStall() {
	// LL/SC counter: one goroutine stalls for 50ms mid-sequence (between
	// LL and SC); others keep making progress.
	c := structures.NewCounter(0)
	var wg sync.WaitGroup
	stallDone := make(chan struct{})
	wg.Add(1)
	go func() { // the stalled process: holds an LL open across a long sleep
		defer wg.Done()
		c.FetchOp(func(v uint64) uint64 {
			time.Sleep(50 * time.Millisecond)
			return v + 1
		})
		close(stallDone)
	}()
	progressed := uint64(0)
	t0 := time.Now()
	for time.Since(t0) < 25*time.Millisecond {
		c.Increment()
		progressed++
	}
	wg.Wait()
	fmt.Printf("  llsc counter: %d increments completed while a process stalled mid-sequence\n", progressed)

	// Mutex version: a stalled lock-holder blocks everyone.
	v, err := baseline.NewMutexLLSC(2, 0)
	must(err)
	hold := make(chan struct{})
	release := make(chan struct{})
	go func() {
		v.LockForDemo(hold, release)
	}()
	<-hold
	blocked := make(chan struct{})
	go func() {
		v.LL(1) // blocks on the held mutex
		close(blocked)
	}()
	select {
	case <-blocked:
		fmt.Println("  mutex counter: UNEXPECTEDLY made progress while the lock was held")
	case <-time.After(25 * time.Millisecond):
		fmt.Println("  mutex counter: 0 increments — blocked behind the stalled lock-holder")
	}
	close(release)
	<-blocked
}

// --- E10: verification summary and simulation-overhead ablation ----------

func e10() {
	if substrate == machine.SubstrateNative {
		fmt.Println("E10 skipped on the native substrate: exhaustive schedule enumeration and the")
		fmt.Println("overhead ladder both measure the simulated machine itself.")
		return
	}
	// E10a: exhaustive stateless model checking — every schedule of small
	// workloads, directly via internal/sched.
	t := bench.NewTable("E10a: exhaustive schedule enumeration (stateless model checking)",
		"workload", "schedules", "max depth", "verdict")

	fig3 := func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		v, err := core.NewCASVar(m, word.MustLayout(32), 0)
		must(err)
		m.Proc(0).FailNext(1)
		return func(proc int) {
				p := m.Proc(proc)
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, old+1) {
						break
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 2 {
					return fmt.Errorf("counter = %d, want 2", got)
				}
				return nil
			}
	}
	res, err := sched.ExploreExhaustive(2, 500_000, fig3)
	t.AddRow("fig3 CAS, 2 procs × 1 inc + spurious fail", res.Schedules, res.MaxDepth, verdict(res, err))

	fig5 := func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		must(err)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < 2; r++ {
					for {
						val, keep := v.LL(p)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 4 {
					return fmt.Errorf("counter = %d, want 4", got)
				}
				return nil
			}
	}
	res, err = sched.ExploreExhaustive(2, 500_000, fig5)
	t.AddRow("fig5 LL/SC, 2 procs × 2 incs", res.Schedules, res.MaxDepth, verdict(res, err))

	fig7 := func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl})
		f, err := core.NewRBoundedFamily(m, 1)
		must(err)
		v, err := f.NewVar(0)
		must(err)
		return func(proc int) {
				p, err := f.Proc(proc)
				if err != nil {
					panic(err)
				}
				for {
					val, keep, err := v.LL(p)
					if err != nil {
						panic(err)
					}
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}, func() error {
				p, _ := f.Proc(0)
				if got := v.Read(p); got != 2 {
					return fmt.Errorf("counter = %d, want 2", got)
				}
				return nil
			}
	}
	res, err = sched.ExploreExhaustive(2, 500_000, fig7)
	t.AddRow("fig7 bounded-tag over RLL/RSC, 2 procs × 1 inc", res.Schedules, res.MaxDepth, verdict(res, err))
	t.Fprint(os.Stdout)

	// E10b: what the simulated machine itself costs, so simulated numbers
	// can be discounted by substrate overhead.
	t2 := bench.NewTable("E10b: simulation-overhead ladder (single proc)",
		"operation", "ns/op")
	n := ops() * 5
	t2.AddRow("hardware atomic CAS (sync/atomic)", timeIt(n, func() func(int) {
		var x atomic.Uint64
		return func(int) {
			old := x.Load()
			x.CompareAndSwap(old, old+1)
		}
	}()))
	{
		m := machine.MustNew(machine.Config{Procs: 1})
		w := m.NewWord(0)
		p := m.Proc(0)
		t2.AddRow("machine CAS (pointer-cell emulation)", timeIt(n, func(int) {
			old := p.Load(w)
			p.CAS(w, old, old+1)
		}))
		t2.AddRow("machine RLL/RSC pair", timeIt(n, func(int) {
			v := p.RLL(w)
			p.RSC(w, v+1)
		}))
	}
	{
		v := core.MustNewVar(word.MustLayout(32), 0)
		t2.AddRow("fig4 LL+SC on hardware", timeIt(n, func(int) {
			val, keep := v.LL()
			v.SC(keep, val+1)
		}))
	}
	{
		m := machine.MustNew(machine.Config{Procs: 1})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		must(err)
		p := m.Proc(0)
		t2.AddRow("fig5 LL+SC on machine", timeIt(n, func(int) {
			val, keep := v.LL(p)
			v.SC(p, keep, val+1)
		}))
	}
	t2.Fprint(os.Stdout)
}

func verdict(res sched.ExhaustiveResult, err error) string {
	switch {
	case err != nil:
		return "VIOLATION: " + err.Error()
	case !res.Exhausted:
		return "budget exhausted (no violation found)"
	default:
		return "exhaustive, all correct"
	}
}

func timeIt(n int, fn func(int)) float64 {
	t0 := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// --- EN: native-substrate differential ------------------------------------

// enative measures the same Figure 3 counter loop — read the word, CAS
// it to value+1 — across three substrate configurations of the same
// machine API, single proc:
//
//   - sim/bare: the simulated machine with nothing attached, the
//     cheapest configuration the simulation can run;
//   - sim/verify: the simulated machine under the verification
//     configuration the conformance and fuzzing harnesses actually run —
//     machine observer feeding obs counters plus the flight recorder's
//     machine-event ring, span tracer with full latency attribution,
//     serializing round-robin scheduler, spurious RSC failures at the
//     rate the sequential fuzzer injects (0.3), the stress matrix's
//     composed fault plan (spurious burst + periodic interference), and
//     the conformance harness's history recording with a windowed
//     linearizability check every 18 recorded operations;
//   - native: hardware sync/atomic.
//
// The second ratio is the substrate dividend this experiment exists to
// pin: figure code verified under the instrumented simulation runs
// unchanged on hardware atomics at production speed. Contended native
// cells (2 and 4 procs) are shown for context but not recorded to
// BENCH_native.json — the recorded single-proc cells are deterministic
// instruction streams, so bench-diff gates numbers whose variance is
// timing noise alone.
func enative() {
	t := bench.NewTable("EN: Figure 3 counter across machine substrates",
		"cell", "procs", "ops/s", "ns/op")

	runCell := func(name string, m *machine.Machine, procs int, rec bool) bench.Result {
		v, err := core.NewCASVar(m, word.DefaultLayout, 0)
		must(err)
		mask := v.Layout().MaxVal()
		ps := make([]*machine.Proc, procs)
		for i := range ps {
			ps[i] = m.Proc(i)
		}
		res := bench.Run(name, procs, ops(), func(w, i int) {
			p := ps[w]
			for {
				old := v.Read(p)
				if v.CompareAndSwap(p, old, (old+1)&mask) {
					return
				}
			}
		})
		if rec {
			recordSub(res, nil, nil, m.Substrate())
		}
		return res
	}

	simBare := runCell("fig3ctr/sim/bare/p1",
		machine.MustNew(machine.Config{Procs: 1, Seed: 1}), 1, true)
	t.AddRow("sim, bare machine", 1, bench.Throughput(simBare.OpsPerSec()), simBare.NsPerOp())

	// The wiring must cost what it costs even when -json didn't create
	// the shared sink.
	vsink := sink
	if vsink == nil {
		vsink = obs.New()
	}
	// Observer chain: the metrics sink's counter observer plus the
	// bounded machine-event ring the flight recorder dumps from — both
	// are armed in the soak and stress harnesses.
	ring := mtrace.MustNewRecorder(4096)
	counters := vsink.MachineObserver()
	mv := machine.MustNew(machine.Config{
		Procs: 1, Seed: 1,
		SpuriousFailProb: 0.3, // the sequential fuzzer's injection rate
		Observer:         func(e machine.Event) { counters(e); ring.Observe(e) },
		Scheduler:        sched.NewController(1, &sched.RoundRobin{}),
		// The stress matrix's adversaries, with the interference budget
		// uncapped so the plan stays armed for the whole run.
		FaultPlan: fault.Compose(
			fault.NewBurst(0, 0, 8),
			fault.NewInterference(fault.AnyProc, 3, 1<<30),
		),
	})
	vv, err := core.NewCASVar(mv, word.DefaultLayout, 0)
	must(err)
	vv.SetMetrics(vsink)
	vtr := trace.MustNew(trace.Config{Procs: 1})
	vtr.SetMetrics(vsink)
	att := &trace.Attribution{OpNs: &obs.Hist{}, RetryNs: &obs.Hist{}, WaitNs: &obs.Hist{}, HelpNs: &obs.Hist{}}
	vtr.SetAttribution(att)
	vv.SetTracer(vtr)
	vmask := vv.Layout().MaxVal()
	vp := mv.Proc(0)
	// History recording and windowed exact checking, exactly as the
	// conformance stress driver does it (internal/conformance runStress):
	// every op is timestamped and recorded, and every window of 18
	// recorded ops is checked for linearizability against the register
	// model from the window's starting value.
	const window = 18
	hrec := history.NewRecorder(1)
	winStart := vv.Read(vp)
	inWindow := 0
	simVerify := bench.Run("fig3ctr/sim/verify/p1", 1, ops(), func(w, i int) {
		call := hrec.Now()
		old := vv.Read(vp)
		okCAS := vv.CompareAndSwap(vp, old, (old+1)&vmask)
		ret := hrec.Now()
		hrec.Record(0, history.Op{Proc: 0, Kind: history.KindCAS, Arg1: old, Arg2: (old + 1) & vmask, RetBool: okCAS, Call: call, Return: ret})
		if inWindow++; inWindow == window {
			if _, err := linearizability.Check(hrec.Ops(), linearizability.State{Val: winStart}); err != nil {
				must(fmt.Errorf("verification cell found a linearizability violation: %w", err))
			}
			hrec = history.NewRecorder(1)
			winStart = vv.Read(vp)
			inWindow = 0
		}
	})
	recordSub(simVerify, nil, nil, machine.SubstrateSim)
	t.AddRow("sim, verification wiring", 1, bench.Throughput(simVerify.OpsPerSec()), simVerify.NsPerOp())

	nat := runCell("fig3ctr/native/p1",
		machine.MustNew(machine.Config{Procs: 1, Substrate: machine.SubstrateNative}), 1, true)
	t.AddRow("native, hardware sync/atomic", 1, bench.Throughput(nat.OpsPerSec()), nat.NsPerOp())

	for _, procs := range []int{2, 4} {
		res := runCell(fmt.Sprintf("fig3ctr/native/p%d", procs),
			machine.MustNew(machine.Config{Procs: procs, Substrate: machine.SubstrateNative}), procs, false)
		t.AddRow("native, contended", procs, bench.Throughput(res.OpsPerSec()), res.NsPerOp())
	}
	t.Fprint(os.Stdout)
	fmt.Printf("native speedup vs sim, bare machine:        %6.1fx\n", simBare.NsPerOp()/nat.NsPerOp())
	fmt.Printf("native speedup vs sim, verification wiring: %6.1fx\n", simVerify.NsPerOp()/nat.NsPerOp())
	fmt.Println("Verify under the instrumented simulation, then run the identical figure code on")
	fmt.Println("hardware atomics: the second ratio is what the substrate switch buys.")
}

// --- Contention sweep -------------------------------------------------------

// recordB is record() for contention-sweep cells: it additionally attaches
// the policy's per-wait backoff duration histogram.
func recordB(res bench.Result, backoff *obs.Hist) {
	if !*flagJSON {
		return
	}
	snap := sink.Snapshot()
	recs = append(recs, bench.NewRecord(res, snap.Sub(lastSnap)).WithBackoff(backoff))
	lastSnap = snap
}

// sweepStallSink defeats dead-code elimination of sweepStall's spin.
var sweepStallSink uint64

// sweepStall widens the central word's LL-SC window with ~1us of real
// work followed by a yield: the E6b technique plus a cost model. The
// spin stands for the work a wide window protects in practice (Figure
// 6's O(W) copy, a universal construction's op application) — work a
// failed SC discards — and the yield guarantees window overlap on a
// small host, where the natural window is a few nanoseconds and no
// policy would have anything to manage. Without the spin, a failed
// attempt is nearly free and retry-immediately is unbeatable by
// construction; with it, the sweep measures what the policies exist to
// manage: how much in-window work gets thrown away.
func sweepStall() {
	x := sweepStallSink | 1
	for i := 0; i < 1000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	sweepStallSink = x
	runtime.Gosched()
}

// econtention sweeps workers x policy x structure. A single op is one
// increment (counters) or one push+pop (stacks). The sharded counter's
// stripes and the elimination array deliberately have no stall hook:
// they are the escape valves whose benefit the sweep is measuring. Op
// counts are ops()/50 per worker (stalled loops are ~100x slower than
// bare ones). Backoff windows are sized for a yield-based single-core
// host (each wait unit already includes periodic yields; the package
// defaults target cache-coherent multiprocessors where far longer waits
// pay off).
func econtention() {
	policies := contention.Names()
	if *flagPolicy != "all" {
		policies = []string{*flagPolicy}
	}
	t := bench.NewTable("Contention sweep: structure x policy x workers, stall-widened LL-SC window",
		"structure", "policy", "workers", "ops/s", "ns/op", "backoff waits/op")
	sweepOps := ops() / 50
	if sweepOps < 100 {
		sweepOps = 100
	}
	mkPolicy := func(name string, workers int) *contention.Policy {
		var pol *contention.Policy
		switch name {
		case "spin":
			pol = contention.Spin(32)
		case "backoff":
			pol = contention.ExponentialBackoff(8, 256)
		case "adaptive":
			pol = contention.Adaptive(8, 256)
		default:
			var err error
			pol, err = contention.ParsePolicy(name)
			must(err)
		}
		pol = pol.WithSeed(uint64(workers)<<8 + 1)
		pol.SetMetrics(sink)
		return pol
	}
	for _, structure := range []string{"counter", "sharded-counter", "stack", "elim-stack"} {
		for _, polName := range policies {
			for _, workers := range []int{1, 2, 4, 8, 16} {
				pol := mkPolicy(polName, workers)
				var backoff obs.Hist
				pol.SetBackoffHist(&backoff)
				name := fmt.Sprintf("contention/%s/%s/p%d", structure, polName, workers)
				var res bench.Result
				switch structure {
				case "counter":
					c := structures.NewCounter(0)
					c.SetMetrics(sink)
					c.SetContention(pol)
					c.SetStallHook(sweepStall)
					res = bench.Run(name, workers, sweepOps, func(w, i int) {
						c.Increment()
					})
				case "sharded-counter":
					c, err := structures.NewShardedCounter(0, 8)
					must(err)
					c.SetMetrics(sink)
					c.SetContention(pol)
					c.SetStallHook(sweepStall)
					res = bench.Run(name, workers, sweepOps, func(w, i int) {
						c.AddProc(w, 1)
					})
				case "stack", "elim-stack":
					st, err := structures.NewStack(workers * 2)
					must(err)
					if structure == "elim-stack" {
						must(st.EnableElimination((workers + 3) / 4))
					}
					st.SetMetrics(sink)
					st.SetContention(pol)
					st.SetStallHook(sweepStall)
					res = bench.Run(name, workers, sweepOps, func(w, i int) {
						if err := st.Push(uint64(w + 1)); err == nil {
							st.Pop()
						}
					})
				}
				recordB(res, &backoff)
				waits := "-"
				if n := backoff.Count(); n > 0 {
					waits = fmt.Sprintf("%.3f", float64(n)/float64(res.Ops))
				}
				t.AddRow(structure, polName, workers, bench.Throughput(res.OpsPerSec()), res.NsPerOp(), waits)
			}
		}
	}
	t.Fprint(os.Stdout)
	fmt.Println("With the widened window, backoff and adaptive keep waiters off the hot word while it is")
	fmt.Println("vulnerable; the elimination array and the counter stripes absorb what backoff cannot.")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llscbench:", err)
		os.Exit(1)
	}
}

// usageErr reports a bad invocation and exits 2 before any experiment runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscbench: "+format+"\n", args...)
	os.Exit(2)
}

func human(d time.Duration) string {
	switch {
	case d >= 365*24*time.Hour*200:
		return ">200y"
	case d >= 365*24*time.Hour:
		return fmt.Sprintf("%.1fy", d.Hours()/24/365)
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
