package main

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		format, checks string
		audit          bool
		wantErr        bool
	}{
		{"json", "all", false, false},
		{"json", "all", true, false},
		{"json", "", true, false},
		{"sarif", "all", true, false},
		{"sarif", "reservedpair", false, false},
		{"yaml", "all", false, true},
		{"", "all", false, true},
		{"json", "reservedpair", true, true},
		{"json", "reservedpair,obscounter", false, false},
	}
	for _, tc := range cases {
		err := validateFlags(tc.format, tc.checks, tc.audit)
		if (err != nil) != tc.wantErr {
			t.Errorf("validateFlags(%q, %q, %v) = %v, wantErr %v",
				tc.format, tc.checks, tc.audit, err, tc.wantErr)
		}
	}
}

// TestDecideExit pins the CLI exit convention: 0 clean, 1 on any
// finding or stale suppression (2 is reserved for usage/load errors,
// which exit before decideExit runs).
func TestDecideExit(t *testing.T) {
	cases := []struct {
		findings, unused, want int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 1},
		{3, 2, 1},
	}
	for _, tc := range cases {
		if got := decideExit(tc.findings, tc.unused); got != tc.want {
			t.Errorf("decideExit(%d, %d) = %d, want %d", tc.findings, tc.unused, got, tc.want)
		}
	}
}

func TestRelPos(t *testing.T) {
	dir := filepath.Join("/", "repo")
	inside := token.Position{Filename: filepath.Join(dir, "pkg", "f.go"), Line: 3, Column: 7}
	if got, want := relPos(dir, inside), filepath.Join("pkg", "f.go")+":3:7"; got != want {
		t.Errorf("relPos inside = %q, want %q", got, want)
	}
	outside := token.Position{Filename: filepath.Join("/", "elsewhere", "f.go"), Line: 1, Column: 1}
	if got := relPos(dir, outside); strings.HasPrefix(got, "..") {
		t.Errorf("relPos outside = %q, want the absolute path kept", got)
	}
}

// TestSarifFromReport checks the SARIF rendering end to end on a small
// synthetic report: one finding, one suppressed finding, one stale
// clause.
func TestSarifFromReport(t *testing.T) {
	rep := report{
		Schema:   Schema,
		Packages: 1,
		Findings: []analysis.Diagnostic{{
			Analyzer: "reservedpair",
			Pos:      "pkg/f.go:3:7",
			Message:  "RSC without a dominating RLL",
		}},
		Suppressed: []analysis.Diagnostic{{
			Analyzer:   "strictaccess",
			Pos:        "pkg/g.go:9:2",
			Message:    "Load between RLL and RSC",
			Suppressed: true,
			Reason:     "snapshot read outside the hot path",
		}},
		Unused: []analysis.UnusedSuppression{{
			Check:  "retrypolicy",
			Reason: "bounded scan",
			Pos:    "pkg/h.go:4:1",
		}},
	}
	log := sarifFromReport("", analysis.All(), rep)

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	// Every analyzer plus the synthetic drift and framework rules.
	if want := len(analysis.All()) + 2; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	byRule := make(map[string]sarifResult)
	for _, r := range run.Results {
		byRule[r.RuleID] = r
		if r.RuleID != run.Tool.Driver.Rules[r.RuleIndex].ID {
			t.Errorf("result %s: ruleIndex %d resolves to %s", r.RuleID, r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID)
		}
	}
	if r := byRule["reservedpair"]; r.Level != "error" || len(r.Suppressions) != 0 {
		t.Errorf("finding rendered as %+v, want level error with no suppressions", r)
	}
	r := byRule["strictaccess"]
	if r.Level != "note" || len(r.Suppressions) != 1 ||
		r.Suppressions[0].Kind != "inSource" ||
		r.Suppressions[0].Justification != "snapshot read outside the hot path" {
		t.Errorf("suppressed finding rendered as %+v, want level note with an inSource justification", r)
	}
	if r := byRule[driftRuleID]; r.Level != "warning" || !strings.Contains(r.Message.Text, "unused suppression") {
		t.Errorf("stale clause rendered as %+v, want level warning naming the unused suppression", r)
	}
}

// TestSarifFromReportEmpty checks that a clean run still emits a valid
// log with an empty (not null) results array, as code-scanning requires.
func TestSarifFromReportEmpty(t *testing.T) {
	log := sarifFromReport("", analysis.All(), report{Schema: Schema})
	if log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("results = %#v, want empty non-nil slice", log.Runs[0].Results)
	}
}

func TestSarifURI(t *testing.T) {
	dir := filepath.Join("/", "repo")
	if got := sarifURI(dir, filepath.Join(dir, "pkg", "f.go")); got != "pkg/f.go" {
		t.Errorf("sarifURI inside = %q, want pkg/f.go", got)
	}
	abs := filepath.Join("/", "elsewhere", "f.go")
	if got := sarifURI(dir, abs); got != filepath.ToSlash(abs) {
		t.Errorf("sarifURI outside = %q, want %q kept", got, filepath.ToSlash(abs))
	}
}
