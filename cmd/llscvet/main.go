// Command llscvet statically enforces the LL/SC usage protocol and the
// repository's instrumentation conventions over Go packages: run
// `llscvet ./...` (the default) at the repo root. It is wired into
// `make vet` and the CI llscvet job, which fails on any unsuppressed
// finding.
//
// Checks (see docs/STATIC_ANALYSIS.md and `llscvet -list`):
//
//	reservedpair, strictaccess, nakedatomic, retrypolicy, obscounter
//
// Findings print in go vet style on stderr. With -json, a machine-
// readable report (schema llsc-vet/v1) is also written, including the
// suppressed findings with their //llsc:allow reasons, so an audit of
// exemptions is one jq away.
//
// Exit status follows the repository CLI convention: 0 when the analysis
// ran and found nothing unsuppressed, 1 when it found violations, 2 on a
// bad invocation or a load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// Schema identifies the JSON report layout. Consumers should reject
// records with an unknown schema; producers bump the version suffix on
// any incompatible change.
const Schema = "llsc-vet/v1"

var (
	flagJSON   = flag.String("json", "", "write a machine-readable findings report (schema "+Schema+") to this path")
	flagChecks = flag.String("checks", "all", "comma-separated checks to run (default all)")
	flagList   = flag.Bool("list", false, "list the available checks and exit")
)

// report is the llsc-vet/v1 document.
type report struct {
	Schema     string                `json:"schema"`
	Checks     []string              `json:"checks"`
	Patterns   []string              `json:"patterns"`
	Packages   int                   `json:"packages"`
	Findings   []analysis.Diagnostic `json:"findings"`
	Suppressed []analysis.Diagnostic `json:"suppressed"`
}

func main() {
	flag.Parse()

	if *flagList {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}

	analyzers, err := analysis.ByName(*flagChecks)
	if err != nil {
		usageErr("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &analysis.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
		os.Exit(2)
	}

	rep := report{
		Schema:     Schema,
		Patterns:   patterns,
		Packages:   len(pkgs),
		Findings:   []analysis.Diagnostic{},
		Suppressed: []analysis.Diagnostic{},
	}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, a.Name)
	}
	for _, d := range diags {
		if d.Suppressed {
			rep.Suppressed = append(rep.Suppressed, d)
			continue
		}
		rep.Findings = append(rep.Findings, d)
		fmt.Fprintln(os.Stderr, d)
	}

	if *flagJSON != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscvet: encoding report: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*flagJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
			os.Exit(2)
		}
	}

	if len(rep.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "llscvet: %d finding(s) in %d package(s)\n", len(rep.Findings), rep.Packages)
		os.Exit(1)
	}
	fmt.Printf("llscvet: %d package(s) clean (%d suppressed finding(s))\n", rep.Packages, len(rep.Suppressed))
}

// indent prefixes every line of s with a tab, for -list output.
func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "\t" + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}

// usageErr reports a bad invocation and exits 2 before any analysis runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscvet: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
