// Command llscvet statically enforces the LL/SC usage protocol and the
// repository's instrumentation conventions over Go packages: run
// `llscvet ./...` (the default) at the repo root. It is wired into
// `make vet` and the CI llscvet job, which fails on any unsuppressed
// finding.
//
// Checks (see docs/STATIC_ANALYSIS.md and `llscvet -list`):
//
//	reservedpair, strictaccess, resescape, progress,
//	nakedatomic, retrypolicy, ctxdeadline, obscounter
//
// Findings print in go vet style on stderr. With -json, a machine-
// readable report is also written: schema llsc-vet/v1 by default, or
// SARIF 2.1.0 with -format=sarif (for CI code-scanning upload). Both
// include the suppressed findings with their //llsc:allow reasons, so an
// audit of exemptions is one jq away.
//
// With -audit-suppressions (requires the full check suite), every
// //llsc:allow clause that no longer suppresses a live finding is
// reported as suppression drift and fails the run: a stale exemption is
// documentation debt pretending to be a waiver.
//
// Exit status follows the repository CLI convention: 0 when the analysis
// ran and found nothing unsuppressed (and no drift under
// -audit-suppressions), 1 when it found violations or drift, 2 on a bad
// invocation or a load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Schema identifies the JSON report layout. Consumers should reject
// records with an unknown schema; producers bump the version suffix on
// any incompatible change.
const Schema = "llsc-vet/v1"

var (
	flagJSON   = flag.String("json", "", "write a machine-readable findings report to this path (layout per -format)")
	flagFormat = flag.String("format", "json", `report format for -json: "json" (schema `+Schema+`) or "sarif" (SARIF 2.1.0)`)
	flagChecks = flag.String("checks", "all", "comma-separated checks to run (default all)")
	flagList   = flag.Bool("list", false, "list the available checks and exit")
	flagAudit  = flag.Bool("audit-suppressions", false, "report //llsc:allow clauses that suppress no live finding (requires -checks=all)")
)

// report is the llsc-vet/v1 document.
type report struct {
	Schema     string                       `json:"schema"`
	Checks     []string                     `json:"checks"`
	Patterns   []string                     `json:"patterns"`
	Packages   int                          `json:"packages"`
	Findings   []analysis.Diagnostic        `json:"findings"`
	Suppressed []analysis.Diagnostic        `json:"suppressed"`
	Unused     []analysis.UnusedSuppression `json:"unused_suppressions,omitempty"`
}

// validateFlags checks the flag combination before any analysis runs; a
// non-nil error is a usage error (exit 2).
func validateFlags(format, checks string, audit bool) error {
	switch format {
	case "json", "sarif":
	default:
		return fmt.Errorf("unknown -format %q (want json or sarif)", format)
	}
	if audit && checks != "all" && checks != "" {
		return fmt.Errorf("-audit-suppressions requires the full suite (-checks=all): a clause for a check that did not run cannot be proven stale")
	}
	return nil
}

// decideExit maps the analysis outcome to the repository CLI exit
// convention: 0 clean, 1 findings (or suppression drift), 2 never (load
// and usage errors exit earlier).
func decideExit(findings, unused int) int {
	if findings > 0 || unused > 0 {
		return 1
	}
	return 0
}

func main() {
	flag.Parse()

	if *flagList {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}

	if err := validateFlags(*flagFormat, *flagChecks, *flagAudit); err != nil {
		usageErr("%v", err)
	}
	analyzers, err := analysis.ByName(*flagChecks)
	if err != nil {
		usageErr("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &analysis.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
		os.Exit(2)
	}
	diags, unused, err := analysis.RunAudited(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
		os.Exit(2)
	}
	if !*flagAudit {
		unused = nil
	}

	rep := report{
		Schema:     Schema,
		Patterns:   patterns,
		Packages:   len(pkgs),
		Findings:   []analysis.Diagnostic{},
		Suppressed: []analysis.Diagnostic{},
	}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, a.Name)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		d.Pos = relPos(cwd, d.Position())
		if d.Suppressed {
			rep.Suppressed = append(rep.Suppressed, d)
			continue
		}
		rep.Findings = append(rep.Findings, d)
		fmt.Fprintln(os.Stderr, d)
	}
	for _, u := range unused {
		u.Pos = relPos(cwd, u.Position())
		rep.Unused = append(rep.Unused, u)
		fmt.Fprintln(os.Stderr, u)
	}

	if *flagJSON != "" {
		var data []byte
		var err error
		switch *flagFormat {
		case "sarif":
			data, err = json.MarshalIndent(sarifFromReport(cwd, analyzers, rep), "", "  ")
		default:
			data, err = json.MarshalIndent(rep, "", "  ")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscvet: encoding report: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*flagJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "llscvet: %v\n", err)
			os.Exit(2)
		}
	}

	if code := decideExit(len(rep.Findings), len(rep.Unused)); code != 0 {
		fmt.Fprintf(os.Stderr, "llscvet: %d finding(s), %d stale suppression(s) in %d package(s)\n",
			len(rep.Findings), len(rep.Unused), rep.Packages)
		os.Exit(code)
	}
	if *flagAudit {
		fmt.Printf("llscvet: %d package(s) clean (%d suppressed finding(s), every clause live)\n", rep.Packages, len(rep.Suppressed))
		return
	}
	fmt.Printf("llscvet: %d package(s) clean (%d suppressed finding(s))\n", rep.Packages, len(rep.Suppressed))
}

// relPos renders a position with its filename relative to dir (when
// possible), so committed reports do not depend on the checkout path.
func relPos(dir string, pos token.Position) string {
	if dir != "" && pos.Filename != "" {
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}

// indent prefixes every line of s with a tab, for -list output.
func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "\t" + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}

// usageErr reports a bad invocation and exits 2 before any analysis runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscvet: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
