package main

import (
	"go/token"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// SARIF 2.1.0 output, hand-rolled on encoding/json so the repository
// stays dependency-free. Only the slice of the format that code-scanning
// uploads need is emitted: tool.driver.rules, results with physical
// locations, and inSource suppressions for //llsc:allow'd findings.
// Stale //llsc:allow clauses surface as results of the synthetic
// suppression-drift rule so they annotate PRs like any other finding.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

	// driftRuleID is the synthetic rule for -audit-suppressions findings.
	driftRuleID = "suppression-drift"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifFromReport renders the run as a SARIF 2.1.0 log. Paths are
// emitted relative to dir with forward slashes, as code-scanning
// expects.
func sarifFromReport(dir string, analyzers []*analysis.Analyzer, rep report) sarifLog {
	driver := sarifDriver{Name: "llscvet"}
	ruleIndex := make(map[string]int)
	addRule := func(id, short, full string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               id,
			ShortDescription: sarifText{Text: short},
			FullDescription:  sarifText{Text: full},
		})
	}
	for _, a := range analyzers {
		short, _, _ := strings.Cut(a.Doc, "\n")
		addRule(a.Name, short, strings.ReplaceAll(a.Doc, "\n", " "))
	}
	addRule(driftRuleID,
		"an //llsc:allow clause no longer suppresses any live finding",
		"Reported by llscvet -audit-suppressions: the code the clause excused has changed (or the clause names no known check); remove or re-justify it.")
	// The framework itself reports malformed //llsc:allow comments under
	// the analyzer name "llscvet".
	addRule("llscvet",
		"malformed //llsc:allow comment",
		"Suppression comments must have the form //llsc:allow <check>(<reason>) with a non-empty reason.")

	var results []sarifResult
	emit := func(rule, level, msg string, pos token.Position, sup *sarifSuppression) {
		idx, ok := ruleIndex[rule]
		if !ok {
			// A suppressed finding of a check outside the -checks
			// selection cannot occur, but stay defensive: file it under
			// the framework rule rather than dropping it.
			idx = ruleIndex["llscvet"]
			rule = "llscvet"
		}
		r := sarifResult{
			RuleID:    rule,
			RuleIndex: idx,
			Level:     level,
			Message:   sarifText{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(dir, pos.Filename)},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		}
		if sup != nil {
			r.Suppressions = []sarifSuppression{*sup}
		}
		results = append(results, r)
	}
	for _, d := range rep.Findings {
		emit(d.Analyzer, "error", d.Message, d.Position(), nil)
	}
	for _, d := range rep.Suppressed {
		emit(d.Analyzer, "note", d.Message, d.Position(),
			&sarifSuppression{Kind: "inSource", Justification: d.Reason})
	}
	for _, u := range rep.Unused {
		emit(driftRuleID, "warning", u.String(), u.Position(), nil)
	}
	if results == nil {
		results = []sarifResult{}
	}
	return sarifLog{
		Version: sarifVersion,
		Schema:  sarifSchemaURI,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
}

// sarifURI renders path relative to dir with forward slashes, as the
// SARIF artifactLocation expects.
func sarifURI(dir, path string) string {
	if dir != "" {
		if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
