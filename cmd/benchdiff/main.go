// Command benchdiff compares two directories of BENCH_*.json benchmark
// records (the llsc-bench/v1 files written by llscbench -json) and exits
// non-zero if any cell regressed by more than the threshold after
// machine-speed normalization — see internal/bench.Diff for the method.
//
// Usage:
//
//	benchdiff [-threshold 0.30] [-v] BASELINE_DIR CURRENT_DIR...
//
// Files are matched by name; a BENCH_*.json present in only one
// directory is reported and skipped, so adding a new experiment never
// breaks an existing baseline comparison. When several CURRENT_DIRs are
// given (independent runs of the same suite), each cell uses its minimum
// ns/op across them — the standard benchmark noise reduction, since
// scheduling noise only ever adds time.
//
// Exit status: 0 all cells within threshold, 1 at least one cell
// regressed, 2 usage error, 3 missing or corrupt benchmark data (an empty
// baseline directory, unreadable JSON, or no comparable cells) — distinct
// from 1 so CI can tell "the code got slower" from "the comparison never
// happened".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

var (
	flagThreshold = flag.Float64("threshold", 0.30, "allowed fractional slowdown per cell after normalization")
	flagVerbose   = flag.Bool("v", false, "print every cell, not just regressions")
)

func main() {
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.30] [-v] BASELINE_DIR CURRENT_DIR...")
		os.Exit(2)
	}
	if *flagThreshold < 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be non-negative, got %g\n", *flagThreshold)
		os.Exit(2)
	}
	baseDir, curDirs := flag.Arg(0), flag.Args()[1:]
	baseFiles, err := filepath.Glob(filepath.Join(baseDir, "BENCH_*.json"))
	if err != nil || len(baseFiles) == 0 {
		dataErr("no BENCH_*.json in %s", baseDir)
	}
	var regressions, compared int
	for _, bf := range baseFiles {
		name := filepath.Base(bf)
		var curRecs []bench.Record
		for _, dir := range curDirs {
			cf := filepath.Join(dir, name)
			if _, err := os.Stat(cf); err != nil {
				continue
			}
			recs, err := bench.ReadRecordsFile(cf)
			if err != nil {
				dataErr("current %s: %v", cf, err)
			}
			curRecs = bestOf(curRecs, recs)
		}
		if curRecs == nil {
			fmt.Printf("%s: only in baseline, skipped\n", name)
			continue
		}
		baseRecs, err := bench.ReadRecordsFile(bf)
		if err != nil {
			dataErr("baseline %s: %v", bf, err)
		}
		rep, err := bench.Diff(baseRecs, curRecs, bench.DiffOptions{Threshold: *flagThreshold})
		if err != nil {
			dataErr("comparing %s: %v", name, err)
		}
		compared += len(rep.Cells)
		regressions += rep.Regressions
		fmt.Printf("%s: %d cells, machine factor %.2fx, %d regression(s)\n",
			name, len(rep.Cells), rep.MedianRatio, rep.Regressions)
		for _, c := range rep.Cells {
			if c.Regressed || *flagVerbose {
				status := "ok"
				if c.Regressed {
					status = "REGRESSED"
				}
				fmt.Printf("  %-40s %10.1f -> %10.1f ns/op  normalized %.2fx  %s\n",
					c.Name, c.BaseNsOp, c.CurNsOp, c.Normalized, status)
			}
		}
	}
	if compared == 0 {
		dataErr("no comparable cells found")
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d cell(s) regressed beyond %.0f%%\n", regressions, *flagThreshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d cells within %.0f%% of baseline trend\n", compared, *flagThreshold*100)
}

// bestOf merges two runs of the same suite, keeping each cell's minimum
// ns/op; cells in only one run are kept as-is.
func bestOf(a, b []bench.Record) []bench.Record {
	if a == nil {
		return b
	}
	idx := make(map[string]int, len(a))
	for i, r := range a {
		idx[r.Name] = i
	}
	for _, r := range b {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp > 0 && (a[i].NsPerOp <= 0 || r.NsPerOp < a[i].NsPerOp) {
				a[i] = r
			}
		} else {
			a = append(a, r)
		}
	}
	return a
}

// dataErr reports missing or corrupt benchmark data and exits 3 — distinct
// from both a regression (1) and a usage error (2).
func dataErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(3)
}
