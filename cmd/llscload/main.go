// Command llscload drives an llscd service and verifies, from the
// outside, that the service's resilience claims hold: it is a closed- or
// open-loop load generator whose every acknowledged operation lands in a
// client-side ledger, checked at the end against the server's /v1/audit
// — the zero-acked-loss gate. Chaos on the server (kills, wedges,
// bursts) may fail requests; it must never lose one the server
// acknowledged.
//
// Usage:
//
//	llscload -url http://localhost:8377 [-conns 4] [-duration 10s]
//	         [-rate 0] [-abort-frac 0] [-seed 1]
//	         [-breaker-threshold 5] [-breaker-cooldown 256]
//	         [-max-shed-frac 1.0] [-report 2s] [-json report.json] [-check]
//
// -rate 0 runs closed-loop (each connection fires as fast as the server
// answers); a positive rate runs open-loop at that many operations per
// second across all connections. -abort-frac deliberately abandons that
// fraction of requests client-side (a ~1ms deadline), exercising the
// server's handling of callers that give up mid-operation. Each
// connection carries a circuit breaker with half-open probing, so a
// degraded server sees backed-off probes instead of a retry storm.
//
// Per-family latency histograms (log₂ buckets, internal/obs) are
// reported periodically and in the final llsc-load/v1 JSON report.
//
// Exit codes: 0 all gates pass; 1 a gate failed (acked-op loss,
// read-your-writes violation, or shed-rate over budget); 2 bad flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/structures"
)

var (
	flagURL      = flag.String("url", "", "base URL of the llscd service (required)")
	flagConns    = flag.Int("conns", 4, "concurrent connections (each with its own circuit breaker)")
	flagDuration = flag.Duration("duration", 10*time.Second, "how long to drive load")
	flagRate     = flag.Int("rate", 0, "target operations/second across all connections (0 = closed loop)")
	flagAbort    = flag.Float64("abort-frac", 0, "fraction of requests abandoned client-side with a ~1ms deadline")
	flagSeed     = flag.Uint64("seed", 1, "deterministic per-connection op-mix seed")

	flagBreakThresh   = flag.Int("breaker-threshold", 5, "consecutive failures that open a connection's breaker")
	flagBreakCooldown = flag.Uint64("breaker-cooldown", 256, "breaker cooldown in loop iterations before a half-open probe")

	flagMaxShedFrac = flag.Float64("max-shed-frac", 1.0, "fail (exit 1) if sheds/attempts exceeds this fraction")
	flagReport      = flag.Duration("report", 0, "periodic stats interval (0 = off)")
	flagJSON        = flag.String("json", "", "write the llsc-load/v1 JSON report to this path")
	flagNoAudit     = flag.Bool("no-audit", false, "skip the final /v1/audit ledger verification")
	flagCheck       = flag.Bool("check", false, "validate the configuration and exit")
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// families are the op families the driver issues, in mix order.
var families = []string{"inc", "cget", "put", "kget", "enq", "deq"}

// famStats is one family's ledger cell: acked (2xx), shed (503),
// timeout (504), errored (any other non-2xx or transport error), aborted
// (client abandoned), and the latency histogram over acked ops.
type famStats struct {
	acked   atomic.Uint64
	shed    atomic.Uint64
	timeout atomic.Uint64
	errored atomic.Uint64
	aborted atomic.Uint64
	lat     obs.Hist
}

// failures returns every non-acked outcome — the ops that MAY have
// committed server-side without an acknowledgement (sheds could not
// have, but folding them in only loosens an upper bound).
func (f *famStats) failures() uint64 {
	return f.shed.Load() + f.timeout.Load() + f.errored.Load() + f.aborted.Load()
}

type ledger struct {
	fams map[string]*famStats
	// deqFound counts acked dequeues that returned an element (an acked
	// empty dequeue consumed nothing).
	deqFound atomic.Uint64
	// newKeys/scratch track distinct-key accounting for the KV bound.
	ackedNewKeys     atomic.Uint64
	attemptedNewKeys atomic.Uint64
	scratchAttempted atomic.Bool
	scratchAcked     atomic.Bool
	// rywViolations: an acked put later read back wrong — the hard fail.
	rywViolations atomic.Uint64
	breakerSkips  atomic.Uint64
}

func newLedger() *ledger {
	l := &ledger{fams: make(map[string]*famStats, len(families))}
	for _, f := range families {
		l.fams[f] = &famStats{}
	}
	return l
}

// splitmix64 is the deterministic per-connection mix PRNG.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type config struct {
	url      string
	conns    int
	duration time.Duration
	rate     int
	abort    float64
	seed     uint64

	breakThresh   int
	breakCooldown uint64
	maxShedFrac   float64
}

func validate() (config, error) {
	c := config{
		url: *flagURL, conns: *flagConns, duration: *flagDuration,
		rate: *flagRate, abort: *flagAbort, seed: *flagSeed,
		breakThresh: *flagBreakThresh, breakCooldown: *flagBreakCooldown,
		maxShedFrac: *flagMaxShedFrac,
	}
	if c.url == "" {
		return c, fmt.Errorf("-url is required")
	}
	if c.conns < 1 {
		return c, fmt.Errorf("-conns must be at least 1, got %d", c.conns)
	}
	if c.conns > 128 {
		return c, fmt.Errorf("-conns above 128 would overflow the per-connection key partitions, got %d", c.conns)
	}
	if c.duration <= 0 {
		return c, fmt.Errorf("-duration must be positive, got %v", c.duration)
	}
	if c.rate < 0 {
		return c, fmt.Errorf("-rate must be non-negative, got %d", c.rate)
	}
	if c.abort < 0 || c.abort > 1 {
		return c, fmt.Errorf("-abort-frac must be in [0,1], got %g", c.abort)
	}
	if c.maxShedFrac < 0 || c.maxShedFrac > 1 {
		return c, fmt.Errorf("-max-shed-frac must be in [0,1], got %g", c.maxShedFrac)
	}
	if c.breakThresh < 1 {
		return c, fmt.Errorf("-breaker-threshold must be at least 1, got %d", c.breakThresh)
	}
	if c.breakCooldown < 1 {
		return c, fmt.Errorf("-breaker-cooldown must be at least 1, got %d", c.breakCooldown)
	}
	return c, nil
}

// keyPartition is each connection's slice of the map key space; key k of
// connection c is c*keyPartition + k, written at most once so the
// read-your-writes expectation is unambiguous even when a failed put
// might have committed.
const keyPartition = (structures.MaxMapKey + 1) / 128

// outcome classifies one request.
type outcome int

const (
	outAcked outcome = iota
	outShed
	outTimeout
	outErrored
	outAborted
)

// driver is the shared state of one load run.
type driver struct {
	cfg    config
	led    *ledger
	client *http.Client
	tokens chan struct{} // open-loop pacing (nil = closed loop)
	stop   chan struct{}
}

// get issues one GET, classifying the outcome; body is decoded into out
// when the response is 200 and out is non-nil.
func (d *driver) get(ctx context.Context, path string, out any) outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.url+path, nil)
	if err != nil {
		return outErrored
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outAborted
		}
		return outErrored
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return outErrored
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				return outErrored
			}
		}
		return outAcked
	case http.StatusServiceUnavailable:
		return outShed
	case http.StatusGatewayTimeout:
		return outTimeout
	default:
		return outErrored
	}
}

func (l *ledger) record(fam string, o outcome, dur time.Duration) {
	fs := l.fams[fam]
	switch o {
	case outAcked:
		fs.acked.Add(1)
		fs.lat.ObserveDuration(dur)
	case outShed:
		fs.shed.Add(1)
	case outTimeout:
		fs.timeout.Add(1)
	case outErrored:
		fs.errored.Add(1)
	case outAborted:
		fs.aborted.Add(1)
	}
}

// runConn is one connection's loop: pick an op from the deterministic
// mix, pass it through the breaker, issue it, settle the ledger.
func (d *driver) runConn(conn int) {
	rng := d.cfg.seed + uint64(conn)*0x9e3779b97f4a7c15
	var iter atomic.Uint64
	breaker, err := resilience.NewBreaker(d.cfg.breakThresh, d.cfg.breakCooldown, iter.Load)
	if err != nil {
		panic(err) // validated in validate()
	}

	// Read-your-writes state: every key this connection has had a put
	// ACKED for, with its value. A later kget on one of these keys must
	// return exactly that value — each key is written at most once.
	acked := make(map[uint64]uint64)
	ackedKeys := make([]uint64, 0, 1024)
	nextKey := uint64(0)

	for {
		select {
		case <-d.stop:
			return
		default:
		}
		if d.tokens != nil {
			select {
			case <-d.stop:
				return
			case <-d.tokens:
			}
		}
		iter.Add(1)
		if !breaker.Allow() {
			d.led.breakerSkips.Add(1)
			time.Sleep(200 * time.Microsecond) // don't hot-spin a dark server
			continue
		}

		r := splitmix64(&rng)
		abort := d.cfg.abort > 0 && float64(r%1000)/1000 < d.cfg.abort
		ctx := context.Background()
		var cancel context.CancelFunc
		if abort {
			ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
		}

		var o outcome
		fam := ""
		start := time.Now()
		switch pick := splitmix64(&rng) % 100; {
		case pick < 25: // counter increment
			fam = "inc"
			o = d.get(ctx, "/v1/counter/inc?d=1", nil)
		case pick < 35: // counter read
			fam = "cget"
			o = d.get(ctx, "/v1/counter/get", nil)
		case pick < 55: // enqueue
			fam = "enq"
			o = d.get(ctx, fmt.Sprintf("/v1/queue/enq?v=%d", r%1000+1), nil)
		case pick < 75: // dequeue
			fam = "deq"
			var dq struct {
				Found bool `json:"found"`
			}
			o = d.get(ctx, "/v1/queue/deq", &dq)
			if o == outAcked && dq.Found {
				d.led.deqFound.Add(1)
			}
		case pick < 90: // kv put, write-once keys from this conn's partition
			fam = "put"
			if nextKey >= keyPartition {
				// Partition exhausted: overwrite a scratch key with no
				// read-your-writes expectation rather than reusing a
				// write-once key.
				d.led.scratchAttempted.Store(true)
				o = d.get(ctx, fmt.Sprintf("/v1/kv/put?k=%d&v=1", uint64(conn)*keyPartition), nil)
				if o == outAcked {
					d.led.scratchAcked.Store(true)
				}
			} else {
				nextKey++
				k := uint64(conn)*keyPartition + nextKey
				v := splitmix64(&rng)%1_000_000 + 1
				d.led.attemptedNewKeys.Add(1)
				o = d.get(ctx, fmt.Sprintf("/v1/kv/put?k=%d&v=%d", k, v), nil)
				if o == outAcked {
					d.led.ackedNewKeys.Add(1)
					acked[k] = v
					ackedKeys = append(ackedKeys, k)
				}
			}
		default: // kv get with read-your-writes verification
			fam = "kget"
			if len(ackedKeys) == 0 {
				fam = "cget"
				o = d.get(ctx, "/v1/counter/get", nil)
				break
			}
			k := ackedKeys[splitmix64(&rng)%uint64(len(ackedKeys))]
			var kv struct {
				Found bool   `json:"found"`
				Value uint64 `json:"value"`
			}
			o = d.get(ctx, fmt.Sprintf("/v1/kv/get?k=%d", k), &kv)
			if o == outAcked && (!kv.Found || kv.Value != acked[k]) {
				// The server acknowledged this put and this read; the
				// value is gone or wrong. This is acked-op loss.
				d.led.rywViolations.Add(1)
				fmt.Fprintf(os.Stderr, "llscload: READ-YOUR-WRITES VIOLATION key=%d want=%d got=(found=%v value=%d)\n",
					k, acked[k], kv.Found, kv.Value)
			}
		}
		if cancel != nil {
			cancel()
		}
		d.led.record(fam, o, time.Since(start))
		breaker.Record(o == outAcked)
	}
}

// totals sums a projection over all families.
func (l *ledger) totals(f func(*famStats) uint64) uint64 {
	var n uint64
	for _, fs := range l.fams {
		n += f(fs)
	}
	return n
}

func (d *driver) printStats(w io.Writer, prefix string) {
	l := d.led
	fmt.Fprintf(w, "%sacked=%d shed=%d timeout=%d errored=%d aborted=%d breaker-skips=%d\n",
		prefix,
		l.totals(func(f *famStats) uint64 { return f.acked.Load() }),
		l.totals(func(f *famStats) uint64 { return f.shed.Load() }),
		l.totals(func(f *famStats) uint64 { return f.timeout.Load() }),
		l.totals(func(f *famStats) uint64 { return f.errored.Load() }),
		l.totals(func(f *famStats) uint64 { return f.aborted.Load() }),
		l.breakerSkips.Load())
	for _, name := range families {
		fs := l.fams[name]
		if fs.acked.Load() == 0 {
			continue
		}
		fmt.Fprintf(w, "%s  %-5s acked=%-8d p50=%-10v p99=%v\n", prefix, name,
			fs.acked.Load(),
			time.Duration(fs.lat.Quantile(0.5)),
			time.Duration(fs.lat.Quantile(0.99)))
	}
}

// auditDoc mirrors service.Audit's JSON.
type auditDoc struct {
	Counter        uint64   `json:"counter"`
	KVLen          int      `json:"kv_len"`
	QueueLen       int      `json:"queue_len"`
	QueueLeaked    int      `json:"queue_leaked"`
	Reclaimed      uint64   `json:"reclaimed"`
	RecoveryEpochs uint64   `json:"recovery_epochs"`
	Conservation   string   `json:"conservation"`
	Incarnations   []uint64 `json:"incarnations"`
	Mode           string   `json:"mode"`
}

// gateResult is one verification gate's verdict for the report.
type gateResult struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// verify runs the ledger gates against the final audit.
func verify(cfg config, l *ledger, audit *auditDoc) []gateResult {
	var gates []gateResult
	gate := func(name string, pass bool, format string, args ...any) {
		gates = append(gates, gateResult{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	gate("read-your-writes", l.rywViolations.Load() == 0,
		"%d violations", l.rywViolations.Load())

	attempts := l.totals(func(f *famStats) uint64 { return f.acked.Load() }) +
		l.totals(func(f *famStats) uint64 { return f.failures() })
	sheds := l.totals(func(f *famStats) uint64 { return f.shed.Load() })
	shedFrac := 0.0
	if attempts > 0 {
		shedFrac = float64(sheds) / float64(attempts)
	}
	gate("shed-rate", shedFrac <= cfg.maxShedFrac,
		"sheds %d / attempts %d = %.3f (budget %.3f)", sheds, attempts, shedFrac, cfg.maxShedFrac)

	if audit == nil {
		return gates
	}

	// Zero acked-op loss: the audit must account for every acknowledged
	// operation; failed operations may or may not have committed, which
	// sets the width of each bracket.
	inc := l.fams["inc"]
	lo, hi := inc.acked.Load(), inc.acked.Load()+inc.failures()
	gate("counter-acked-loss", audit.Counter >= lo && audit.Counter <= hi,
		"counter %d, acked-loss bounds [%d, %d]", audit.Counter, lo, hi)

	kvLo, kvHi := l.ackedNewKeys.Load(), l.attemptedNewKeys.Load()
	if l.scratchAcked.Load() {
		kvLo++
	}
	if l.scratchAttempted.Load() {
		kvHi++
	}
	gate("kv-acked-loss", uint64(audit.KVLen) >= kvLo && uint64(audit.KVLen) <= kvHi,
		"kv_len %d, acked-loss bounds [%d, %d]", audit.KVLen, kvLo, kvHi)

	enq, deq := l.fams["enq"], l.fams["deq"]
	qLo := int64(enq.acked.Load()) - int64(l.deqFound.Load()) - int64(deq.failures())
	qHi := int64(enq.acked.Load()) + int64(enq.failures()) - int64(l.deqFound.Load())
	gate("queue-acked-loss", int64(audit.QueueLen) >= qLo && int64(audit.QueueLen) <= qHi,
		"queue_len %d, acked-loss bounds [%d, %d]", audit.QueueLen, qLo, qHi)

	gate("conservation", audit.Conservation == "ok" && audit.QueueLeaked == 0,
		"conservation=%q leaked=%d", audit.Conservation, audit.QueueLeaked)

	return gates
}

// report is the llsc-load/v1 document.
type report struct {
	Schema   string            `json:"schema"`
	URL      string            `json:"url"`
	Conns    int               `json:"conns"`
	Duration string            `json:"duration"`
	Rate     int               `json:"rate"`
	Seed     uint64            `json:"seed"`
	Families map[string]famDoc `json:"families"`
	Breaker  breakerDoc        `json:"breaker"`
	Audit    *auditDoc         `json:"audit,omitempty"`
	Gates    []gateResult      `json:"gates"`
	Pass     bool              `json:"pass"`
}

type famDoc struct {
	Acked   uint64 `json:"acked"`
	Shed    uint64 `json:"shed"`
	Timeout uint64 `json:"timeout"`
	Errored uint64 `json:"errored"`
	Aborted uint64 `json:"aborted"`
	P50Ns   uint64 `json:"p50_ns"`
	P99Ns   uint64 `json:"p99_ns"`
}

type breakerDoc struct {
	Skips uint64 `json:"skips"`
}

func main() {
	flag.Parse()
	cfg, err := validate()
	if err != nil {
		usageErr("%v", err)
	}
	if *flagCheck {
		fmt.Printf("llscload: configuration ok (url=%s conns=%d duration=%v rate=%d abort-frac=%g)\n",
			cfg.url, cfg.conns, cfg.duration, cfg.rate, cfg.abort)
		return
	}

	d := &driver{
		cfg: cfg,
		led: newLedger(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.conns * 2,
			MaxIdleConnsPerHost: cfg.conns * 2,
		}},
		stop: make(chan struct{}),
	}
	if cfg.rate > 0 {
		d.tokens = make(chan struct{}, cfg.rate)
		tick := time.NewTicker(time.Second / time.Duration(cfg.rate))
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-d.stop:
					return
				case <-tick.C:
					select {
					case d.tokens <- struct{}{}:
					default: // bucket full: the drivers are behind, drop
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			d.runConn(c)
		}(c)
	}

	if *flagReport > 0 {
		reportTick := time.NewTicker(*flagReport)
		defer reportTick.Stop()
		go func() {
			for {
				select {
				case <-d.stop:
					return
				case <-reportTick.C:
					d.printStats(os.Stderr, "llscload: ")
				}
			}
		}()
	}

	time.Sleep(cfg.duration)
	close(d.stop)
	wg.Wait()

	fmt.Println("== llscload final ==")
	d.printStats(os.Stdout, "")

	var audit *auditDoc
	if !*flagNoAudit {
		var a auditDoc
		if o := d.get(context.Background(), "/v1/audit", &a); o != outAcked {
			fmt.Fprintf(os.Stderr, "llscload: final audit failed (%d)\n", o)
			os.Exit(1)
		}
		audit = &a
		fmt.Printf("audit: counter=%d kv_len=%d queue_len=%d epochs=%d reclaimed=%d conservation=%s incarnations=%v\n",
			a.Counter, a.KVLen, a.QueueLen, a.RecoveryEpochs, a.Reclaimed, a.Conservation, a.Incarnations)
	}

	gates := verify(cfg, d.led, audit)
	pass := true
	for _, g := range gates {
		mark := "PASS"
		if !g.Pass {
			mark = "FAIL"
			pass = false
		}
		fmt.Printf("gate %-18s %s  %s\n", g.Name, mark, g.Detail)
	}

	if *flagJSON != "" {
		rep := report{
			Schema: "llsc-load/v1", URL: cfg.url, Conns: cfg.conns,
			Duration: cfg.duration.String(), Rate: cfg.rate, Seed: cfg.seed,
			Families: map[string]famDoc{},
			Breaker:  breakerDoc{Skips: d.led.breakerSkips.Load()},
			Audit:    audit, Gates: gates, Pass: pass,
		}
		for _, name := range families {
			fs := d.led.fams[name]
			rep.Families[name] = famDoc{
				Acked: fs.acked.Load(), Shed: fs.shed.Load(),
				Timeout: fs.timeout.Load(), Errored: fs.errored.Load(),
				Aborted: fs.aborted.Load(),
				P50Ns:   fs.lat.Quantile(0.5), P99Ns: fs.lat.Quantile(0.99),
			}
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*flagJSON, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscload: writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", *flagJSON)
	}

	if !pass {
		fmt.Println("FAILED: a verification gate did not hold")
		os.Exit(1)
	}
	fmt.Println("PASS: all gates held")
}
