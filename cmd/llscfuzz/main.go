// Command llscfuzz is a differential fuzzer: it drives long randomized
// operation sequences against each implementation and the Figure 2 oracle
// in lock-step (sequentially, where results must match op-for-op) and
// under deterministic serialized schedules (concurrently, where final
// states and counters must match). A failing seed is printed for replay.
//
// It also runs the adversarial fault-injection stress matrix from
// internal/stress: every figure implementation under every fault plan,
// with each recorded history checked for linearizability.
//
// Usage:
//
//	llscfuzz [-seqs 200] [-ops 500] [-seed 1] [-sched 200] [-substrate sim|native]
//	         [-metrics-addr :8080]
//	         [-fault-plan all] [-crash-at 12] [-burst-len 50] [-stress-rounds 10]
//	         [-stress-json stress-report.json]
//
// With -substrate=native the machine-backed targets run on hardware
// sync/atomic (internal/machine's native substrate): the sequential
// differential phase exercises the native RLL/RSC emulation op-for-op
// against the oracle, while the serialized-schedule and fault-injection
// phases are skipped — schedulers and fault plans need the simulated
// operation boundary.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/stress"
	"repro/internal/word"
)

var (
	flagSeqs    = flag.Int("seqs", 200, "sequential differential runs per implementation")
	flagOps     = flag.Int("ops", 500, "operations per sequential run")
	flagSeed    = flag.Int64("seed", 1, "base seed")
	flagSched   = flag.Int("sched", 200, "serialized-schedule runs per implementation")
	flagMetrics = flag.String("metrics-addr", "", "serve live expvar/pprof/metrics on this address during the run (e.g. :8080)")

	flagSubstrate = flag.String("substrate", "sim",
		"machine substrate for machine-backed targets (sim, native); native skips the scheduler and fault phases")

	flagFaultPlan = flag.String("fault-plan", "all",
		"fault plans for the stress matrix: off, all, none, or a fault.ParsePlan spec — a component (burst|interference|crash|tagpressure) or several joined by \u2218, e.g. burst\u2218crash")
	flagCrashAt      = flag.Int("crash-at", 12, "machine-operation index at which the crash plan wedges its victim")
	flagBurstLen     = flag.Int("burst-len", 50, "length of the spurious-failure burst (RSC attempts)")
	flagStressRounds = flag.Int("stress-rounds", 10, "quiescent rounds per stress cell")
	flagStressJSON   = flag.String("stress-json", "", "write the stress matrix report (schema llsc-stress/v1) to this path")
)

// sink aggregates LL/SC counters across every fuzzed target when
// -metrics-addr is set (nil otherwise — the instrumented paths then cost
// one predicted branch). Watching it live shows fuzzing coverage: every
// counter the taxonomy names should move during a full run.
var sink *obs.Metrics

// substrate is the parsed -substrate value; the sequential targets build
// their machines on it. The sim-only phases are gated in main.
var substrate = machine.SubstrateSim

// validateFlags applies the fail-fast rules (exit 2 before minutes of
// fuzzing, not after). Extracted so the rules are unit-testable without
// exiting the process; selectedPlans validates the fault-plan flags.
func validateFlags(seqs, sched, ops int, sub string) error {
	if seqs < 0 || sched < 0 {
		return fmt.Errorf("-seqs and -sched must be non-negative, got %d and %d", seqs, sched)
	}
	if ops < 1 {
		return fmt.Errorf("-ops must be positive, got %d", ops)
	}
	if _, err := machine.ParseSubstrate(sub); err != nil {
		return fmt.Errorf("bad -substrate: %w", err)
	}
	return nil
}

func main() {
	flag.Parse()
	if err := validateFlags(*flagSeqs, *flagSched, *flagOps, *flagSubstrate); err != nil {
		usageErr("%v", err)
	}
	substrate, _ = machine.ParseSubstrate(*flagSubstrate)
	if _, err := selectedPlans(); err != nil {
		usageErr("%v", err)
	}
	if *flagMetrics != "" {
		sink = obs.New()
		obs.Publish("llscfuzz", sink)
		srv, err := obs.Serve(*flagMetrics)
		must(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "llscfuzz: metrics at http://%s/debug/vars (text: /metrics, prometheus: /metrics/prometheus, health: /healthz)\n", srv.Addr())
	}
	failures := 0
	failures += sequentialPhase()
	if substrate == machine.SubstrateNative {
		fmt.Println("\n== serialized-schedule fuzzing skipped (-substrate=native: schedulers need the simulated op boundary) ==")
		fmt.Println("== fault-injection stress matrix skipped (-substrate=native: fault plans need the simulated op boundary) ==")
	} else {
		failures += schedulePhase()
		failures += faultPhase()
	}
	if failures > 0 {
		fmt.Printf("\nFAILED: %d fuzzing phases found divergence\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall fuzzing phases passed")
}

// seqTarget is a single-process register with LL/VL/SC (and optionally
// CAS) whose every op result must equal the oracle's.
type seqTarget interface {
	Name() string
	Read() uint64
	// HasLLSC reports whether LL/VL/SC are provided; CAS-only targets
	// (Figure 3) return false and are fuzzed through CAS alone.
	HasLLSC() bool
	LL() uint64
	VL() bool
	SC(v uint64) bool
	CAS(old, new uint64) (bool, bool)
}

func sequentialPhase() int {
	fmt.Printf("== sequential differential fuzzing (%d runs × %d ops per implementation) ==\n", *flagSeqs, *flagOps)
	mk := []func(initial uint64) seqTarget{
		func(init uint64) seqTarget { return newSeqFig4(init) },
		func(init uint64) seqTarget { return newSeqFig5(init) },
		func(init uint64) seqTarget { return newSeqFig3(init) },
		func(init uint64) seqTarget { return newSeqFig7(init) },
		func(init uint64) seqTarget { return newSeqIR(init) },
		func(init uint64) seqTarget { return newSeqComposed(init) },
	}
	bad := 0
	for _, factory := range mk {
		name := factory(0).Name()
		failed := false
		for run := 0; run < *flagSeqs && !failed; run++ {
			seed := *flagSeed + int64(run)
			if err := diffRun(factory, seed); err != nil {
				fmt.Printf("  %-14s FAIL at seed %d: %v\n", name, seed, err)
				bad++
				failed = true
			}
		}
		if !failed {
			fmt.Printf("  %-14s OK (%d runs)\n", name, *flagSeqs)
		}
	}
	return bad
}

func diffRun(factory func(uint64) seqTarget, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	const initial = 2
	tgt := factory(initial)
	oracle := spec.MustNewRegister(1, initial)
	oracleLL := false

	for i := 0; i < *flagOps; i++ {
		switch rng.Intn(5) {
		case 0:
			g, w := tgt.Read(), oracle.Read()
			if g != w {
				return fmt.Errorf("op %d Read: %d vs oracle %d", i, g, w)
			}
		case 1:
			if !tgt.HasLLSC() {
				continue
			}
			g, w := tgt.LL(), oracle.LL(0)
			oracleLL = true
			if g != w {
				return fmt.Errorf("op %d LL: %d vs oracle %d", i, g, w)
			}
		case 2:
			if !tgt.HasLLSC() || !oracleLL {
				continue // VL/SC undefined before first LL (Figure 2)
			}
			g, w := tgt.VL(), oracle.VL(0)
			if g != w {
				return fmt.Errorf("op %d VL: %v vs oracle %v", i, g, w)
			}
		case 3:
			if !tgt.HasLLSC() || !oracleLL {
				continue
			}
			v := uint64(rng.Intn(8))
			g, w := tgt.SC(v), oracle.SC(0, v)
			if g != w {
				return fmt.Errorf("op %d SC(%d): %v vs oracle %v", i, v, g, w)
			}
			oracleLL = false // well-formedness: LL again before next VL/SC
		default:
			old, new := uint64(rng.Intn(8)), uint64(rng.Intn(8))
			g, ok := tgt.CAS(old, new)
			if !ok {
				continue
			}
			w := oracle.CAS(old, new)
			if g != w {
				return fmt.Errorf("op %d CAS(%d,%d): %v vs oracle %v", i, old, new, g, w)
			}
		}
	}
	return nil
}

func schedulePhase() int {
	fmt.Printf("\n== serialized-schedule fuzzing (%d seeds, 3 procs) ==\n", *flagSched)
	bad := 0

	// Figure 3 CAS counter under systematic schedules.
	build3 := func(seed int64, ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 3, Scheduler: ctrl, SpuriousFailProb: 0.1, Seed: seed})
		v, err := core.NewCASVar(m, word.MustLayout(32), 0)
		must(err)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < 10; r++ {
					for {
						old := v.Read(p)
						if v.CompareAndSwap(p, old, old+1) {
							break
						}
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 30 {
					return fmt.Errorf("counter = %d, want 30", got)
				}
				return nil
			}
	}
	if seed, err := sched.Explore(3, *flagSched, *flagSeed, build3); err != nil {
		fmt.Printf("  fig3 schedules FAIL (replay seed %d): %v\n", seed, err)
		bad++
	} else {
		fmt.Printf("  fig3 schedules OK\n")
	}

	// Figure 5 LL/SC counter.
	build5 := func(seed int64, ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 3, Scheduler: ctrl, SpuriousFailProb: 0.1, Seed: seed})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		must(err)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < 10; r++ {
					for {
						val, keep := v.LL(p)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}, func() error {
				if got := v.Read(m.Proc(0)); got != 30 {
					return fmt.Errorf("counter = %d, want 30", got)
				}
				return nil
			}
	}
	if seed, err := sched.Explore(3, *flagSched, *flagSeed+10_000, build5); err != nil {
		fmt.Printf("  fig5 schedules FAIL (replay seed %d): %v\n", seed, err)
		bad++
	} else {
		fmt.Printf("  fig5 schedules OK\n")
	}

	// Figure 6 over RLL/RSC: replicated-vector writers; the check rereads
	// and verifies no torn state survived.
	build6 := func(seed int64, ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: 3, Scheduler: ctrl, SpuriousFailProb: 0.1, Seed: seed})
		f, err := core.NewRLargeFamily(m, 2, 0)
		must(err)
		v, err := f.NewVar([]uint64{0, 0})
		must(err)
		torn := make([]bool, 3)
		return func(proc int) {
				p := m.Proc(proc)
				cur := make([]uint64, 2)
				next := make([]uint64, 2)
				for r := 0; r < 6; r++ {
					for {
						keep, res := v.WLL(p, cur)
						if res != core.Succ {
							continue
						}
						if cur[0] != cur[1] {
							torn[proc] = true
							return
						}
						next[0] = cur[0] + 1
						next[1] = next[0]
						if v.SC(p, keep, next) {
							break
						}
					}
				}
			}, func() error {
				for proc, bad := range torn {
					if bad {
						return fmt.Errorf("proc %d observed a torn snapshot", proc)
					}
				}
				p := m.Proc(0)
				final := make([]uint64, 2)
				v.Read(p, final)
				if final[0] != 18 || final[1] != 18 {
					return fmt.Errorf("final = %v, want [18 18]", final)
				}
				return nil
			}
	}
	if seed, err := sched.Explore(3, *flagSched, *flagSeed+20_000, build6); err != nil {
		fmt.Printf("  fig6 schedules FAIL (replay seed %d): %v\n", seed, err)
		bad++
	} else {
		fmt.Printf("  fig6 schedules OK\n")
	}
	return bad
}

// faultPhase runs the adversarial stress matrix: each figure
// implementation under the selected fault plans, every recorded history
// checked for linearizability. A non-empty -stress-json path gets the
// llsc-stress/v1 report for offline inspection.
func faultPhase() int {
	plans, err := selectedPlans()
	must(err)
	if plans == nil {
		fmt.Println("\n== fault-injection stress matrix skipped (-fault-plan off) ==")
		return 0
	}
	regs := stress.DefaultRegisters()
	cfg := stress.Config{Procs: 3, Rounds: *flagStressRounds, OpsPerProc: 8, Seed: *flagSeed}
	fmt.Printf("\n== fault-injection stress matrix (%d registers × %d plans, %d rounds) ==\n",
		len(regs), len(plans), cfg.Rounds)
	rep, err := stress.RunMatrix(cfg, regs, plans)
	must(err)
	bad := 0
	for _, c := range rep.Cells {
		status := "OK"
		if !c.Ok {
			status = "FAIL: " + c.Violation
			bad++
		}
		injected := c.Counters["fault_inj_spurious"] + c.Counters["fault_inj_interference"] + c.Counters["fault_inj_stall"]
		fmt.Printf("  %-5s × %-13s %s (%d ops, %d faults injected)\n", c.Register, c.Plan, status, c.Ops, injected)
	}
	if *flagStressJSON != "" {
		must(rep.WriteFile(*flagStressJSON))
		fmt.Printf("  report written to %s\n", *flagStressJSON)
	}
	return bad
}

// selectedPlans maps -fault-plan to plan specs, applying the -crash-at
// and -burst-len overrides. A nil slice (with nil error) means the phase
// is switched off.
func selectedPlans() ([]stress.PlanSpec, error) {
	if *flagFaultPlan == "off" {
		return nil, nil
	}
	if *flagBurstLen < 1 {
		return nil, fmt.Errorf("-burst-len must be positive, got %d (a zero-length burst is a no-op adversary)", *flagBurstLen)
	}
	if *flagCrashAt < 0 {
		return nil, fmt.Errorf("-crash-at must be non-negative, got %d", *flagCrashAt)
	}
	if *flagStressRounds < 1 {
		return nil, fmt.Errorf("-stress-rounds must be positive, got %d", *flagStressRounds)
	}
	mk := func(spec string) stress.PlanSpec {
		return stress.PlanSpec{Name: spec, New: func(cfg stress.Config) fault.Plan {
			plan, err := fault.ParsePlan(spec, fault.PlanParams{
				Procs:    cfg.Procs,
				BurstLen: *flagBurstLen,
				CrashAt:  *flagCrashAt,
			})
			must(err) // validated at flag time; cfg.Procs >= 1 keeps crash viable
			return plan
		}}
	}
	if *flagFaultPlan == "all" {
		// The historical matrix: kill (fail-stop + restart) is excluded
		// because RunCell does not restart victims — request it explicitly.
		specs := []string{"none", "burst", "interference", "crash", "tagpressure"}
		plans := make([]stress.PlanSpec, 0, len(specs))
		for _, spec := range specs {
			plans = append(plans, mk(spec))
		}
		return plans, nil
	}
	if _, err := fault.ParsePlan(*flagFaultPlan, fault.PlanParams{
		Procs:    1,
		BurstLen: *flagBurstLen,
		CrashAt:  *flagCrashAt,
	}); err != nil {
		return nil, fmt.Errorf("bad -fault-plan (want off, all, or a plan spec): %w", err)
	}
	return []stress.PlanSpec{mk(*flagFaultPlan)}, nil
}

// --- sequential adapters -------------------------------------------------

// seqMachineConfig builds the single-proc machine for a sequential
// target on the selected substrate. Spurious-failure injection and the
// machine observer are simulation-only; the native cell necessarily runs
// ideal — the differential value it adds is exercising the native
// RLL/RSC emulation op-for-op against the oracle.
func seqMachineConfig(spurious float64, seed int64) machine.Config {
	cfg := machine.Config{Procs: 1, Substrate: substrate, Seed: seed}
	if substrate == machine.SubstrateSim {
		cfg.SpuriousFailProb = spurious
		cfg.Observer = sink.MachineObserver()
	}
	return cfg
}

type seqFig4 struct {
	v    *core.Var
	keep core.Keep
}

func newSeqFig4(init uint64) seqTarget {
	v := core.MustNewVar(word.MustLayout(48), init)
	v.SetMetrics(sink)
	return &seqFig4{v: v}
}
func (s *seqFig4) HasLLSC() bool                    { return true }
func (s *seqFig4) Name() string                     { return "fig4" }
func (s *seqFig4) Read() uint64                     { return s.v.Read() }
func (s *seqFig4) LL() uint64                       { v, k := s.v.LL(); s.keep = k; return v }
func (s *seqFig4) VL() bool                         { return s.v.VL(s.keep) }
func (s *seqFig4) SC(v uint64) bool                 { return s.v.SC(s.keep, v) }
func (s *seqFig4) CAS(old, new uint64) (bool, bool) { return s.v.CompareAndSwap(old, new), true }

type seqFig5 struct {
	m    *machine.Machine
	v    *core.RVar
	keep core.Keep
}

func newSeqFig5(init uint64) seqTarget {
	m := machine.MustNew(seqMachineConfig(0.3, 5))
	v, err := core.NewRVar(m, word.MustLayout(48), init)
	must(err)
	v.SetMetrics(sink)
	return &seqFig5{m: m, v: v}
}
func (s *seqFig5) HasLLSC() bool                    { return true }
func (s *seqFig5) Name() string                     { return "fig5" }
func (s *seqFig5) Read() uint64                     { return s.v.Read(s.m.Proc(0)) }
func (s *seqFig5) LL() uint64                       { v, k := s.v.LL(s.m.Proc(0)); s.keep = k; return v }
func (s *seqFig5) VL() bool                         { return s.v.VL(s.m.Proc(0), s.keep) }
func (s *seqFig5) SC(v uint64) bool                 { return s.v.SC(s.m.Proc(0), s.keep, v) }
func (s *seqFig5) CAS(old, new uint64) (bool, bool) { return false, false }

type seqFig3 struct {
	m *machine.Machine
	v *core.CASVar
}

func newSeqFig3(init uint64) seqTarget {
	m := machine.MustNew(seqMachineConfig(0.3, 3))
	v, err := core.NewCASVar(m, word.MustLayout(48), init)
	must(err)
	v.SetMetrics(sink)
	return &seqFig3{m: m, v: v}
}
func (s *seqFig3) HasLLSC() bool    { return false }
func (s *seqFig3) Name() string     { return "fig3" }
func (s *seqFig3) Read() uint64     { return s.v.Read(s.m.Proc(0)) }
func (s *seqFig3) LL() uint64       { return s.Read() } // no LL; fuzzer uses CAS path
func (s *seqFig3) VL() bool         { return false }
func (s *seqFig3) SC(v uint64) bool { return false }
func (s *seqFig3) CAS(old, new uint64) (bool, bool) {
	return s.v.CompareAndSwap(s.m.Proc(0), old, new), true
}

type seqFig7 struct {
	f    *core.BoundedFamily
	v    *core.BoundedVar
	keep core.BKeep
	held bool
}

func newSeqFig7(init uint64) seqTarget {
	f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: 1, K: 1})
	f.SetMetrics(sink)
	v, err := f.NewVar(init)
	must(err)
	return &seqFig7{f: f, v: v}
}
func (s *seqFig7) proc() *core.BoundedProc {
	p, err := s.f.Proc(0)
	must(err)
	return p
}
func (s *seqFig7) HasLLSC() bool { return true }
func (s *seqFig7) Name() string  { return "fig7" }
func (s *seqFig7) Read() uint64  { return s.v.Read() }
func (s *seqFig7) LL() uint64 {
	if s.held {
		s.v.CL(s.proc(), s.keep) // release the previous sequence's slot
	}
	v, k, err := s.v.LL(s.proc())
	must(err)
	s.keep = k
	s.held = true
	return v
}
func (s *seqFig7) VL() bool { return s.v.VL(s.proc(), s.keep) }
func (s *seqFig7) SC(v uint64) bool {
	s.held = false
	return s.v.SC(s.proc(), s.keep, v)
}
func (s *seqFig7) CAS(old, new uint64) (bool, bool) { return false, false }

type seqIR struct{ v *baseline.IsraeliRappoport }

func newSeqIR(init uint64) seqTarget {
	v, err := baseline.NewIsraeliRappoport(1, init)
	must(err)
	return &seqIR{v: v}
}
func (s *seqIR) HasLLSC() bool                    { return true }
func (s *seqIR) Name() string                     { return "israeli-rap" }
func (s *seqIR) Read() uint64                     { return s.v.Read() }
func (s *seqIR) LL() uint64                       { v, _ := s.v.LL(0); return v }
func (s *seqIR) VL() bool                         { return s.v.VL(0) }
func (s *seqIR) SC(v uint64) bool                 { return s.v.SC(0, v) }
func (s *seqIR) CAS(old, new uint64) (bool, bool) { return false, false }

type seqComposed struct {
	m    *machine.Machine
	v    *baseline.Composed
	keep baseline.ComposedKeep
}

func newSeqComposed(init uint64) seqTarget {
	m := machine.MustNew(seqMachineConfig(0.3, 11))
	v, err := baseline.NewComposed(m, 24, 24, init)
	must(err)
	return &seqComposed{m: m, v: v}
}
func (s *seqComposed) HasLLSC() bool                    { return true }
func (s *seqComposed) Name() string                     { return "fig3∘fig4" }
func (s *seqComposed) Read() uint64                     { return s.v.Read(s.m.Proc(0)) }
func (s *seqComposed) LL() uint64                       { v, k := s.v.LL(s.m.Proc(0)); s.keep = k; return v }
func (s *seqComposed) VL() bool                         { return s.v.VL(s.m.Proc(0), s.keep) }
func (s *seqComposed) SC(v uint64) bool                 { return s.v.SC(s.m.Proc(0), s.keep, v) }
func (s *seqComposed) CAS(old, new uint64) (bool, bool) { return false, false }

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llscfuzz:", err)
		os.Exit(1)
	}
}

// usageErr reports a bad invocation and exits 2 before any phase runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llscfuzz: "+format+"\n", args...)
	os.Exit(2)
}
