package main

import (
	"flag"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(200, 200, 500, "sim"); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateFlags(0, 0, 1, "native"); err != nil {
		t.Fatalf("phases-off / native substrate rejected: %v", err)
	}
	if err := validateFlags(-1, 0, 1, "sim"); err == nil || !strings.Contains(err.Error(), "-seqs") {
		t.Errorf("negative seqs: %v", err)
	}
	if err := validateFlags(0, -1, 1, "sim"); err == nil {
		t.Error("negative sched accepted")
	}
	if err := validateFlags(0, 0, 0, "sim"); err == nil || !strings.Contains(err.Error(), "-ops") {
		t.Errorf("zero ops: %v", err)
	}
	if err := validateFlags(0, 0, 1, "turbo"); err == nil || !strings.Contains(err.Error(), "-substrate") {
		t.Errorf("unknown substrate: %v", err)
	}
}

func TestSelectedPlansValidation(t *testing.T) {
	set := func(name, val string) {
		if err := flag.Set(name, val); err != nil {
			t.Fatal(err)
		}
	}
	reset := func() {
		set("fault-plan", "all")
		set("crash-at", "12")
		set("burst-len", "50")
		set("stress-rounds", "10")
	}
	defer reset()

	reset()
	plans, err := selectedPlans()
	if err != nil || len(plans) != 5 {
		t.Fatalf("all plans: %d, %v", len(plans), err)
	}
	set("fault-plan", "off")
	if plans, err := selectedPlans(); err != nil || plans != nil {
		t.Fatalf("off must disable the phase: %v, %v", plans, err)
	}
	set("fault-plan", "burst")
	if plans, err := selectedPlans(); err != nil || len(plans) != 1 || plans[0].Name != "burst" {
		t.Fatalf("single plan: %+v, %v", plans, err)
	}
	set("fault-plan", "nope")
	if _, err := selectedPlans(); err == nil || !strings.Contains(err.Error(), "-fault-plan") {
		t.Errorf("unknown plan: %v", err)
	}
	reset()
	set("burst-len", "0")
	if _, err := selectedPlans(); err == nil || !strings.Contains(err.Error(), "-burst-len") {
		t.Errorf("zero burst: %v", err)
	}
	reset()
	set("crash-at", "-1")
	if _, err := selectedPlans(); err == nil || !strings.Contains(err.Error(), "-crash-at") {
		t.Errorf("negative crash-at: %v", err)
	}
	reset()
	set("stress-rounds", "0")
	if _, err := selectedPlans(); err == nil || !strings.Contains(err.Error(), "-stress-rounds") {
		t.Errorf("zero rounds: %v", err)
	}
}
