package main

import "testing"

func TestValidateFlags(t *testing.T) {
	ok := func(workload, policy string, procs, rounds, tail int, spurious float64) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(workload, policy, procs, rounds, tail, spurious); err != nil {
				t.Errorf("validateFlags rejected a valid invocation: %v", err)
			}
		}
	}
	bad := func(workload, policy string, procs, rounds, tail int, spurious float64) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(workload, policy, procs, rounds, tail, spurious); err == nil {
				t.Error("validateFlags accepted an invalid invocation (main would not exit 2)")
			}
		}
	}
	t.Run("defaults", ok("fig5", "random", 2, 2, 256, 0.1))
	t.Run("all workloads", func(t *testing.T) {
		for _, w := range []string{"fig3", "fig5", "fig7", "broken"} {
			ok(w, "rr", 1, 1, 1, 0)(t)
		}
	})
	t.Run("unknown workload", bad("fig4", "random", 2, 2, 256, 0.1))
	t.Run("unknown policy", bad("fig5", "fifo", 2, 2, 256, 0.1))
	t.Run("zero procs", bad("fig5", "random", 0, 2, 256, 0.1))
	t.Run("zero rounds", bad("fig5", "random", 2, 0, 256, 0.1))
	t.Run("zero tail", bad("fig5", "random", 2, 2, 0, 0.1))
	t.Run("spurious above one", bad("fig5", "random", 2, 2, 256, 1.5))
	t.Run("negative spurious", bad("fig5", "random", 2, 2, 256, -0.1))
}
