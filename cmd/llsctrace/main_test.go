package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	otrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

func TestValidateFlags(t *testing.T) {
	ok := func(workload, policy, format string, procs, rounds, tail int, spurious float64) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(workload, policy, format, procs, rounds, tail, spurious); err != nil {
				t.Errorf("validateFlags rejected a valid invocation: %v", err)
			}
		}
	}
	bad := func(workload, policy, format string, procs, rounds, tail int, spurious float64) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(workload, policy, format, procs, rounds, tail, spurious); err == nil {
				t.Error("validateFlags accepted an invalid invocation (main would not exit 2)")
			}
		}
	}
	t.Run("defaults", ok("fig5", "random", "text", 2, 2, 256, 0.1))
	t.Run("all workloads", func(t *testing.T) {
		for _, w := range []string{"fig3", "fig5", "fig7", "broken"} {
			ok(w, "rr", "chrome", 1, 1, 1, 0)(t)
		}
	})
	t.Run("unknown workload", bad("fig4", "random", "text", 2, 2, 256, 0.1))
	t.Run("unknown policy", bad("fig5", "fifo", "text", 2, 2, 256, 0.1))
	t.Run("unknown format", bad("fig5", "random", "perfetto", 2, 2, 256, 0.1))
	t.Run("zero procs", bad("fig5", "random", "text", 0, 2, 256, 0.1))
	t.Run("zero rounds", bad("fig5", "random", "text", 2, 0, 256, 0.1))
	t.Run("zero tail", bad("fig5", "random", "text", 2, 2, 0, 0.1))
	t.Run("spurious above one", bad("fig5", "random", "text", 2, 2, 256, 1.5))
	t.Run("negative spurious", bad("fig5", "random", "text", 2, 2, 256, -0.1))
}

// recordedEvents captures a short canned interleaving so the format
// tests exercise the same Recorder path main does.
func recordedEvents(t *testing.T) *trace.Recorder {
	t.Helper()
	rec := trace.MustNewRecorder(64)
	rec.Observe(machine.Event{Seq: 1, Proc: 0, Op: machine.OpRLL, Word: 3, Val: 7})
	rec.Observe(machine.Event{Seq: 2, Proc: 1, Op: machine.OpLoad, Word: 3, Val: 7})
	rec.Observe(machine.Event{Seq: 3, Proc: 0, Op: machine.OpRSC, Word: 3, Val: 8, OK: true})
	rec.Observe(machine.Event{Seq: 4, Proc: 1, Op: machine.OpRSC, Word: 3, Val: 9, OK: false, Spurious: true})
	return rec
}

func TestWriteTraceText(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTrace(&buf, "text", recordedEvents(t)); err != nil {
		t.Fatalf("writeTrace(text): %v", err)
	}
	for _, want := range []string{"RLL", "RSC"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteTraceChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTrace(&buf, "chrome", recordedEvents(t)); err != nil {
		t.Fatalf("writeTrace(chrome): %v", err)
	}
	n, err := otrace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("chrome export does not validate: %v", err)
	}
	if n != 4 {
		t.Errorf("chrome export has %d events, want 4", n)
	}
	if !strings.Contains(buf.String(), `"spurious": true`) {
		t.Errorf("chrome export missing spurious flag:\n%s", buf.String())
	}
}
