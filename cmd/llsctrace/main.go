// Command llsctrace replays a workload on the simulated machine under a
// chosen deterministic schedule and dumps the exact operation
// interleaving — the failure-reproduction companion to cmd/llscfuzz and
// internal/sched: when a fuzzing run reports a failing seed, re-run it
// here with tracing to read what happened, operation by operation.
//
// Usage:
//
//	llsctrace -workload fig3|fig5|fig7|broken -seed 42 [-procs 2] [-rounds 2]
//	          [-policy random|rr|pct] [-spurious 0.1] [-tail 64]
//	          [-format text|chrome] [-out trace.json]
//
// The "broken" workload is a deliberately non-atomic read-then-store
// counter; with a couple of processors almost any seed demonstrates a
// lost update, and the trace shows the guilty interleaving.
//
// -format=chrome emits the captured interleaving as a Chrome
// trace-event JSON document (load it in chrome://tracing or Perfetto;
// one tick per shared-memory operation, one row per processor). The
// export is self-validated before it is written. With -out the
// document goes to that file; otherwise it goes to stdout and the
// run summary moves to stderr so stdout stays valid JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	otrace "repro/internal/obs/trace"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/word"
)

var (
	flagWorkload = flag.String("workload", "fig5", "workload to trace (fig3, fig5, fig7, broken)")
	flagSeed     = flag.Int64("seed", 1, "schedule seed (for -policy random/pct)")
	flagProcs    = flag.Int("procs", 2, "number of simulated processors")
	flagRounds   = flag.Int("rounds", 2, "operations per processor")
	flagPolicy   = flag.String("policy", "random", "scheduling policy (random, rr, pct)")
	flagSpurious = flag.Float64("spurious", 0.1, "spurious RSC failure probability")
	flagTail     = flag.Int("tail", 256, "how many trailing events to keep")
	flagFormat   = flag.String("format", "text", "trace output format (text, chrome)")
	flagOut      = flag.String("out", "", "write the trace to this file instead of stdout")
)

func main() {
	flag.Parse()
	if err := validateFlags(*flagWorkload, *flagPolicy, *flagFormat, *flagProcs, *flagRounds, *flagTail, *flagSpurious); err != nil {
		usageErr("%v", err)
	}

	var policy sched.Policy
	switch *flagPolicy {
	case "random":
		policy = sched.NewRandom(*flagSeed)
	case "rr":
		policy = &sched.RoundRobin{}
	case "pct":
		policy = sched.NewPCT(*flagSeed, 400, 3)
	}

	rec := trace.MustNewRecorder(*flagTail)
	ctrl := sched.NewController(*flagProcs, policy)
	m := machine.MustNew(machine.Config{
		Procs:            *flagProcs,
		Scheduler:        ctrl,
		Observer:         rec.Observe,
		SpuriousFailProb: *flagSpurious,
		Seed:             *flagSeed,
	})

	workload, check := buildWorkload(m)
	sched.RunUnder(ctrl, *flagProcs, workload)

	// With -format=chrome and no -out, stdout is the JSON document, so
	// the human-facing summary moves to stderr.
	summary := io.Writer(os.Stdout)
	if *flagFormat == "chrome" && *flagOut == "" {
		summary = os.Stderr
	}
	fmt.Fprintf(summary, "workload=%s policy=%s seed=%d procs=%d rounds=%d spurious=%v\n",
		*flagWorkload, *flagPolicy, *flagSeed, *flagProcs, *flagRounds, *flagSpurious)
	fmt.Fprintf(summary, "scheduling decisions: %d; events captured: %d (dropped %d)\n\n",
		ctrl.Steps(), rec.Len(), rec.Dropped())

	out := io.Writer(os.Stdout)
	var outFile *os.File
	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		must(err)
		out = f
		outFile = f
	}
	if err := writeTrace(out, *flagFormat, rec); err != nil {
		fmt.Fprintln(os.Stderr, "llsctrace:", err)
		os.Exit(1)
	}
	if outFile != nil {
		must(outFile.Close())
		fmt.Fprintf(summary, "trace written to %s\n", *flagOut)
	}

	fmt.Fprintln(summary)
	if err := check(); err != nil {
		fmt.Fprintf(summary, "INVARIANT VIOLATED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(summary, "invariant holds")
}

// writeTrace renders the captured machine events in the requested
// format. The chrome path runs the export through ValidateChrome (via
// WriteMachineChrome) before anything hits the writer, so a malformed
// document can never ship.
func writeTrace(w io.Writer, format string, rec *trace.Recorder) error {
	switch format {
	case "chrome":
		return otrace.WriteMachineChrome(w, rec.Events())
	default:
		return rec.Dump(w)
	}
}

func buildWorkload(m *machine.Machine) (func(proc int), func() error) {
	procs := *flagProcs
	rounds := *flagRounds
	want := uint64(procs * rounds)

	switch *flagWorkload {
	case "fig3":
		v, err := core.NewCASVar(m, word.MustLayout(32), 0)
		must(err)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < rounds; r++ {
					for {
						old := v.Read(p)
						if v.CompareAndSwap(p, old, old+1) {
							break
						}
					}
				}
			}, func() error {
				return wantCounter(v.Read(m.Proc(0)), want)
			}
	case "fig5":
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		must(err)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < rounds; r++ {
					for {
						val, keep := v.LL(p)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}, func() error {
				return wantCounter(v.Read(m.Proc(0)), want)
			}
	case "fig7":
		f, err := core.NewRBoundedFamily(m, 2)
		must(err)
		v, err := f.NewVar(0)
		must(err)
		return func(proc int) {
				p, err := f.Proc(proc)
				must(err)
				for r := 0; r < rounds; r++ {
					for {
						val, keep, err := v.LL(p)
						must(err)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}, func() error {
				p, _ := f.Proc(0)
				return wantCounter(v.Read(p), want)
			}
	case "broken":
		w := m.NewWord(0)
		return func(proc int) {
				p := m.Proc(proc)
				for r := 0; r < rounds; r++ {
					v := p.Load(w)  // read
					p.Store(w, v+1) // store — deliberately not atomic
				}
			}, func() error {
				return wantCounter(m.Proc(0).Load(w), want)
			}
	default:
		return nil, nil
	}
}

// validateFlags rejects unusable invocations before any machine is
// built, per the repository's fail-fast CLI convention (exit 2 via
// usageErr in main).
func validateFlags(workload, policy, format string, procs, rounds, tail int, spurious float64) error {
	switch workload {
	case "fig3", "fig5", "fig7", "broken":
	default:
		return fmt.Errorf("unknown -workload %q (want fig3, fig5, fig7, broken)", workload)
	}
	switch policy {
	case "random", "rr", "pct":
	default:
		return fmt.Errorf("unknown -policy %q (want random, rr, pct)", policy)
	}
	switch format {
	case "text", "chrome":
	default:
		return fmt.Errorf("unknown -format %q (want text, chrome)", format)
	}
	if procs < 1 {
		return fmt.Errorf("-procs must be positive, got %d", procs)
	}
	if rounds < 1 {
		return fmt.Errorf("-rounds must be positive, got %d", rounds)
	}
	if tail < 1 {
		return fmt.Errorf("-tail must be positive, got %d", tail)
	}
	if spurious < 0 || spurious > 1 {
		return fmt.Errorf("-spurious must be in [0,1], got %v", spurious)
	}
	return nil
}

// usageErr reports a bad invocation and exits 2 before any replay runs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llsctrace: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func wantCounter(got, want uint64) error {
	if got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llsctrace:", err)
		os.Exit(1)
	}
}
