package main

import (
	"math"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	valid := []struct {
		name string
		bits uint
		rate float64
	}{
		{"paper example", 48, 1e6},
		{"narrowest tag", 1, 1},
		{"widest tag", 63, 1e9},
	}
	for _, c := range valid {
		t.Run(c.name, func(t *testing.T) {
			if err := validateFlags(c.bits, c.rate); err != nil {
				t.Errorf("validateFlags(%d, %v) = %v, want nil", c.bits, c.rate, err)
			}
		})
	}
	invalid := []struct {
		name string
		bits uint
		rate float64
	}{
		{"zero bits", 0, 1e6},
		{"full word", 64, 1e6},
		{"zero rate", 48, 0},
		{"negative rate", 48, -1},
		{"nan rate", 48, math.NaN()},
		{"infinite rate", 48, math.Inf(1)},
	}
	for _, c := range invalid {
		t.Run(c.name, func(t *testing.T) {
			if err := validateFlags(c.bits, c.rate); err == nil {
				t.Errorf("validateFlags(%d, %v) = nil, want error (main would not exit 2)", c.bits, c.rate)
			}
		})
	}
}
