// Command tagsim reproduces the paper's tag-wraparound arithmetic
// (Section 1: "on a 64-bit machine, reserving 48 bits for the tag means
// that an error can occur only if a variable is modified 2^48 times during
// one LL-SC sequence. Even if a variable is modified a million times a
// second, this would take about nine years.").
//
// It prints, for a range of tag widths and update rates, how long a
// variable must be modified during a single LL-SC sequence before the tag
// wraps and the unbounded-tag algorithms (Figures 3-5) could err — and
// contrasts this with the data bits remaining and with Figure 7's bounded
// tags, which never err.
//
// Usage:
//
//	tagsim [-bits 48] [-rate 1e6]
//	tagsim -table
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/word"
)

func main() {
	bits := flag.Uint("bits", 48, "tag width in bits")
	rate := flag.Float64("rate", 1e6, "updates per second to the variable")
	table := flag.Bool("table", false, "print the full width × rate table")
	flag.Parse()

	if err := validateFlags(*bits, *rate); err != nil {
		fmt.Fprintf(os.Stderr, "tagsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *table {
		printTable()
		return
	}
	d := word.TimeToWrap(*bits, *rate)
	fmt.Printf("tag width:     %d bits (data: %d bits)\n", *bits, 64-*bits)
	fmt.Printf("update rate:   %.3g updates/second\n", *rate)
	fmt.Printf("time to wrap:  %s\n", humanDuration(d))
	fmt.Printf("\nAn unbounded-tag LL/SC (Figures 3-5) errs only if one LL-SC sequence\n")
	fmt.Printf("spans a full wrap; the bounded-tag construction (Figure 7) never errs.\n")
}

// validateFlags rejects unusable invocations before any arithmetic runs,
// per the repository's fail-fast CLI convention (exit 2 in main).
func validateFlags(bits uint, rate float64) error {
	if bits < 1 || bits > 63 {
		return fmt.Errorf("-bits must be in [1,63], got %d", bits)
	}
	if !(rate > 0) || math.IsInf(rate, 1) {
		return fmt.Errorf("-rate must be a positive finite update rate, got %v", rate)
	}
	return nil
}

func printTable() {
	rates := []float64{1e3, 1e6, 1e9}
	t := bench.NewTable("time until a tag of the given width wraps",
		"tag bits", "data bits", "@1K ops/s", "@1M ops/s", "@1G ops/s")
	for _, bits := range []uint{8, 16, 24, 32, 40, 48, 56} {
		row := []any{bits, 64 - bits}
		for _, r := range rates {
			row = append(row, humanDuration(word.TimeToWrap(bits, r)))
		}
		t.AddRow(row...)
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nThe paper's example: 48-bit tags at 1M updates/s wrap after ~9 years.")
}

func humanDuration(d time.Duration) string {
	if d == time.Duration(math.MaxInt64) {
		return ">292y"
	}
	switch {
	case d >= 365*24*time.Hour:
		return fmt.Sprintf("%.1fy", d.Hours()/24/365)
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
