package llsc_test

import (
	"sync"
	"testing"

	llsc "repro"
)

// These tests exercise the public facade exactly as a downstream user
// would, ensuring the re-exports compose (construction, tokens, errors).

func TestFacadeVarRoundTrip(t *testing.T) {
	v, err := llsc.NewVar(llsc.DefaultLayout, 5)
	if err != nil {
		t.Fatal(err)
	}
	val, keep := v.LL()
	if val != 5 {
		t.Fatalf("LL = %d, want 5", val)
	}
	if !v.VL(keep) {
		t.Fatal("VL false")
	}
	if !v.SC(keep, 6) {
		t.Fatal("SC failed")
	}
	if v.Read() != 6 {
		t.Fatalf("Read = %d, want 6", v.Read())
	}
}

func TestFacadeMachineAndRVar(t *testing.T) {
	m, err := llsc.NewMachine(llsc.MachineConfig{Procs: 2, SpuriousFailProb: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := llsc.NewRVar(m, llsc.MustLayout(48), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	for i := uint64(0); i < 100; i++ {
		val, keep := v.LL(p)
		if val != i {
			t.Fatalf("LL = %d, want %d", val, i)
		}
		if !v.SC(p, keep, i+1) {
			t.Fatalf("SC %d failed", i)
		}
	}
	if st := m.Stats(); st.RSCSuccess != 100 {
		t.Errorf("RSC successes = %d, want 100", st.RSCSuccess)
	}
}

func TestFacadeCASVar(t *testing.T) {
	m := llsc.MustNewMachine(llsc.MachineConfig{Procs: 1})
	v, err := llsc.NewCASVar(m, llsc.DefaultLayout, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	if !v.CompareAndSwap(p, 3, 4) {
		t.Fatal("CAS failed")
	}
	if v.Read(p) != 4 {
		t.Fatalf("Read = %d, want 4", v.Read(p))
	}
}

func TestFacadeLargeFamily(t *testing.T) {
	f := llsc.MustNewLargeFamily(llsc.LargeConfig{Procs: 2, Words: 4})
	v, err := f.NewVar([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	keep, res := v.WLL(p, dst)
	if res != llsc.Succ {
		t.Fatalf("WLL = %d, want Succ", res)
	}
	if !v.SC(p, keep, []uint64{5, 6, 7, 8}) {
		t.Fatal("SC failed")
	}
	v.Read(p, dst)
	if dst[0] != 5 || dst[3] != 8 {
		t.Fatalf("Read = %v", dst)
	}
}

func TestFacadeBoundedFamily(t *testing.T) {
	f := llsc.MustNewBoundedFamily(llsc.BoundedConfig{Procs: 2, K: 1})
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	val, keep, err := v.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0 {
		t.Fatalf("LL = %d", val)
	}
	if !v.SC(p, keep, 1) {
		t.Fatal("SC failed")
	}
	// Slot exhaustion error is reachable through the facade.
	_, k1, err := v.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.LL(p); err != llsc.ErrTooManySequences {
		t.Fatalf("second LL error = %v, want ErrTooManySequences", err)
	}
	v.CL(p, k1)
}

func TestFacadeStructures(t *testing.T) {
	s, err := llsc.NewStack(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(9); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Pop(); !ok || v != 9 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}

	q, err := llsc.NewQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(8); err != nil {
		t.Fatal(err)
	}
	if v, ok := q.Dequeue(); !ok || v != 8 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}

	c := llsc.NewCounter(0)
	c.Increment()
	if c.Load() != 1 {
		t.Fatalf("Counter = %d", c.Load())
	}

	set, err := llsc.NewSet(8)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := set.Insert(7); err != nil || !ok {
		t.Fatalf("Insert = (%v,%v)", ok, err)
	}
	if !set.Contains(7) {
		t.Fatal("Contains(7) false")
	}
}

func TestFacadeMemoryAndObject(t *testing.T) {
	mem := llsc.MustNewMemory(4)
	ok, err := mem.DCAS(0, 1, 0, 0, 1, 2)
	if err != nil || !ok {
		t.Fatalf("DCAS = (%v,%v)", ok, err)
	}
	if v, _ := mem.Read(1); v != 2 {
		t.Fatalf("Read = %d, want 2", v)
	}

	o, err := llsc.NewObject(llsc.ObjectConfig{Procs: 1, Words: 2}, []uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := o.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	o.Apply(p, func(cur, next []uint64) {
		next[0], next[1] = cur[0]+1, cur[1]+2
	})
	dst := make([]uint64, 2)
	o.Read(p, dst)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("state = %v", dst)
	}
}

func TestFacadeBaselines(t *testing.T) {
	mv, err := llsc.NewMutexLLSC(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mv.LL(0)
	if !mv.SC(0, 1) {
		t.Fatal("mutex SC failed")
	}

	ir, err := llsc.NewIsraeliRappoport(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ir.LL(0)
	if !ir.SC(0, 1) {
		t.Fatal("IR SC failed")
	}
}

func TestFacadeConcurrentSmoke(t *testing.T) {
	v := llsc.MustNewVar(llsc.MustLayout(32), 0)
	const workers = 4
	const rounds = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v.Read() != workers*rounds {
		t.Fatalf("counter = %d, want %d", v.Read(), workers*rounds)
	}
}
